//! Property-based tests of the RL components: GAE algebra and policy
//! distribution invariants for arbitrary rollouts.

use proptest::prelude::*;

use graphrare_rl::{
    gae, normalize, GlobalPolicy, Policy, PpoAgent, PpoConfig, ValueNet, ACTION_ARITY,
};
use graphrare_tensor::{Matrix, Tape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With γ = λ = 1 and no terminals, the advantage telescopes to
    /// `Σ rewards + bootstrap − V(s_t)`.
    #[test]
    fn gae_telescopes_at_gamma_lambda_one(
        rewards in proptest::collection::vec(-2.0f32..2.0, 1..12),
        values in proptest::collection::vec(-2.0f32..2.0, 1..12),
        last in -2.0f32..2.0,
    ) {
        let n = rewards.len().min(values.len());
        let rewards = &rewards[..n];
        let values = &values[..n];
        let dones = vec![false; n];
        let (adv, ret) = gae(rewards, values, &dones, last, 1.0, 1.0);
        for t in 0..n {
            let tail: f32 = rewards[t..].iter().sum::<f32>() + last;
            prop_assert!((adv[t] - (tail - values[t])).abs() < 1e-3,
                "t={t}: adv {} vs telescoped {}", adv[t], tail - values[t]);
            prop_assert!((ret[t] - (adv[t] + values[t])).abs() < 1e-5);
        }
    }

    /// Terminal flags cut the credit assignment: everything after a done
    /// has no influence on advantages before it.
    #[test]
    fn gae_respects_episode_boundaries(
        prefix in proptest::collection::vec(-1.0f32..1.0, 1..6),
        suffix_a in proptest::collection::vec(-1.0f32..1.0, 1..6),
        suffix_b in proptest::collection::vec(-1.0f32..1.0, 1..6),
    ) {
        let n_pre = prefix.len();
        let make = |suffix: &[f32]| {
            let rewards: Vec<f32> = prefix.iter().chain(suffix).copied().collect();
            let values = vec![0.3f32; rewards.len()];
            let mut dones = vec![false; rewards.len()];
            dones[n_pre - 1] = true;
            gae(&rewards, &values, &dones, 0.9, 0.95, 0.9).0
        };
        let a = make(&suffix_a);
        let b = make(&suffix_b);
        for t in 0..n_pre {
            prop_assert!((a[t] - b[t]).abs() < 1e-6,
                "advantage {t} leaked across episode boundary");
        }
    }

    #[test]
    fn normalize_output_is_standardised(
        mut values in proptest::collection::vec(-100.0f32..100.0, 3..50),
    ) {
        let distinct = values.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-3);
        normalize(&mut values);
        if distinct {
            let mean: f32 = values.iter().sum::<f32>() / values.len() as f32;
            let var: f32 =
                values.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / values.len() as f32;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
            prop_assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    /// Every head's sampled action distribution is a valid categorical:
    /// repeated sampling with the initial near-uniform policy covers all
    /// three actions.
    #[test]
    fn initial_policy_explores_every_action(seed in 0u64..500) {
        let policy = GlobalPolicy::new(4, 16, 2, seed);
        let value = ValueNet::new(4, 16, seed + 1);
        let mut agent = PpoAgent::new(policy, value, PpoConfig { seed, ..Default::default() });
        let state = [0.2f32, -0.1, 0.5, 0.0];
        let mut seen = [false; ACTION_ARITY];
        for _ in 0..64 {
            let (actions, logp, _) = agent.act(&state);
            prop_assert!(logp.is_finite() && logp < 0.0);
            for &a in &actions {
                seen[a as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some action never sampled: {seen:?}");
    }

    /// Policy logits are a deterministic function of the state.
    #[test]
    fn policy_logits_deterministic(
        state in proptest::collection::vec(-1.0f32..1.0, 6),
        seed in 0u64..100,
    ) {
        let policy = GlobalPolicy::new(6, 8, 3, seed);
        let eval = |p: &GlobalPolicy| {
            let mut t = Tape::new();
            let s = t.constant(Matrix::row_vector(&state));
            let l = p.logits(&mut t, s);
            t.value(l).clone()
        };
        prop_assert_eq!(eval(&policy), eval(&policy));
    }
}
