//! Proximal Policy Optimization (Schulman et al., 2017).
//!
//! The paper uses Stable-Baselines3's PPO over a multi-discrete action
//! space; this is the same algorithm rebuilt on the workspace autograd:
//! clipped surrogate objective, GAE(λ) advantages, a squared-error value
//! loss and an entropy bonus, optimised with Adam over shuffled
//! minibatches for several epochs per update.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graphrare_tensor::optim::{Adam, Optimizer};
use graphrare_tensor::param::{clip_grad_norm, zero_grads, Param};
use graphrare_tensor::{Matrix, Tape};

use crate::buffer::{gae, normalize, RolloutBuffer};
use crate::policy::{Policy, ValueNet, ACTION_ARITY};
use crate::snapshot::AgentState;

/// PPO hyper-parameters (defaults follow Stable-Baselines3).
#[derive(Clone, Copy, Debug)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub gae_lambda: f32,
    /// Clipping radius ε of the surrogate objective.
    pub clip: f32,
    /// Learning rate for both actor and critic.
    pub lr: f32,
    /// Optimisation epochs per update.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch: usize,
    /// Value-loss coefficient.
    pub vf_coef: f32,
    /// Entropy-bonus coefficient.
    pub ent_coef: f32,
    /// Gradient-norm clip.
    pub max_grad_norm: f32,
    /// Action-sampling / shuffling seed.
    pub seed: u64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            gae_lambda: 0.95,
            clip: 0.2,
            lr: 3e-4,
            epochs: 4,
            minibatch: 16,
            vf_coef: 0.5,
            ent_coef: 0.01,
            max_grad_norm: 0.5,
            seed: 0,
        }
    }
}

/// Diagnostics of one [`PpoAgent::update`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PpoStats {
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Mean policy entropy (summed over heads).
    pub entropy: f32,
    /// Approximate KL divergence between old and new policy.
    pub approx_kl: f32,
}

/// A PPO agent: stochastic multi-discrete policy plus critic.
pub struct PpoAgent<P: Policy> {
    policy: P,
    value: ValueNet,
    cfg: PpoConfig,
    opt: Adam,
    rng: StdRng,
    params: Vec<Param>,
}

impl<P: Policy> PpoAgent<P> {
    /// Creates an agent from a policy, a critic and a config.
    pub fn new(policy: P, value: ValueNet, cfg: PpoConfig) -> Self {
        let mut params = policy.params();
        params.extend(value.params());
        Self {
            opt: Adam::new(cfg.lr, 0.0),
            rng: StdRng::seed_from_u64(cfg.seed),
            policy,
            value,
            cfg,
            params,
        }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Exports the complete mutable state of the agent — policy + critic
    /// parameters, Adam moments and the action-sampling RNG — for
    /// checkpointing (see [`AgentState`]).
    pub fn export_state(&self) -> AgentState {
        AgentState {
            params: self.params.iter().map(Param::value).collect(),
            adam: self.opt.export_state(&self.params),
            rng: self.rng.state(),
        }
    }

    /// Restores state captured by [`PpoAgent::export_state`] onto an agent
    /// built from the same configuration.
    ///
    /// # Panics
    /// Panics on parameter count/shape mismatch — checkpoints are
    /// validated by the store layer before they reach an agent.
    pub fn import_state(&mut self, state: &AgentState) {
        assert_eq!(state.params.len(), self.params.len(), "agent import: param count mismatch");
        for (p, m) in self.params.iter().zip(&state.params) {
            p.set_value(m.clone());
        }
        self.opt.import_state(&self.params, &state.adam);
        self.rng = StdRng::from_state(state.rng);
    }

    /// Samples an action for `state`. Returns the per-head action indices,
    /// the joint log-probability and the critic's value estimate.
    pub fn act(&mut self, state: &[f32]) -> (Vec<u8>, f32, f32) {
        let (logits, value) = self.forward_single(state);
        let heads = self.policy.heads();
        let mut actions = Vec::with_capacity(heads);
        let mut log_prob = 0.0f32;
        let mut probs = [0f32; ACTION_ARITY];
        for h in 0..heads {
            let row = &logits[h * ACTION_ARITY..(h + 1) * ACTION_ARITY];
            softmax3(row, &mut probs);
            let x: f32 = self.rng.gen();
            let chosen = sample_head(&probs, x);
            actions.push(chosen as u8);
            log_prob += probs[chosen].max(1e-12).ln();
        }
        (actions, log_prob, value)
    }

    /// Greedy (argmax per head) action for `state`.
    pub fn act_deterministic(&mut self, state: &[f32]) -> Vec<u8> {
        let (logits, _) = self.forward_single(state);
        let heads = self.policy.heads();
        (0..heads).map(|h| greedy_head(&logits[h * ACTION_ARITY..(h + 1) * ACTION_ARITY])).collect()
    }

    /// Critic value of `state`.
    pub fn value_of(&self, state: &[f32]) -> f32 {
        let mut tape = Tape::new();
        let s = tape.constant(Matrix::row_vector(state));
        let v = self.value.forward(&mut tape, s);
        tape.value(v).scalar_value()
    }

    fn forward_single(&self, state: &[f32]) -> (Vec<f32>, f32) {
        let mut tape = Tape::new();
        let s = tape.constant(Matrix::row_vector(state));
        let l = self.policy.logits(&mut tape, s);
        let v = self.value.forward(&mut tape, s);
        (tape.value(l).row(0).to_vec(), tape.value(v).scalar_value())
    }

    /// Runs the clipped-surrogate update on a collected rollout.
    ///
    /// `last_value` bootstraps GAE past the final transition.
    pub fn update(&mut self, buffer: &RolloutBuffer, last_value: f32) -> PpoStats {
        assert!(!buffer.is_empty(), "update: empty rollout buffer");
        let n = buffer.len();
        let (mut advantages, returns) = gae(
            &buffer.rewards,
            &buffer.values,
            &buffer.dones,
            last_value,
            self.cfg.gamma,
            self.cfg.gae_lambda,
        );
        normalize(&mut advantages);

        let heads = self.policy.heads();
        let state_dim = self.policy.state_dim();
        let mut stats = PpoStats::default();
        let mut updates = 0usize;

        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.cfg.epochs {
            // Fisher–Yates shuffle of the minibatch order.
            for i in (1..n).rev() {
                let j = self.rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(self.cfg.minibatch.max(1)) {
                let b = chunk.len();
                let mut states = Matrix::zeros(b, state_dim);
                let mut actions = Vec::with_capacity(b * heads);
                let mut old_logp = Matrix::zeros(b, 1);
                let mut adv = Matrix::zeros(b, 1);
                let mut ret = Matrix::zeros(b, 1);
                for (r, &i) in chunk.iter().enumerate() {
                    states.row_mut(r).copy_from_slice(&buffer.states[i]);
                    actions.extend_from_slice(&buffer.actions[i]);
                    old_logp.set(r, 0, buffer.log_probs[i]);
                    adv.set(r, 0, advantages[i]);
                    ret.set(r, 0, returns[i]);
                }
                let actions = Rc::new(actions);
                let neg_old = Rc::new(old_logp.map(|v| -v));
                let adv = Rc::new(adv);
                let neg_ret = Rc::new(ret.map(|v| -v));

                zero_grads(&self.params);
                let mut tape = Tape::new();
                let s = tape.constant(states);
                let logits = self.policy.logits(&mut tape, s);
                let logp = tape.multi_discrete_log_prob(logits, ACTION_ARITY, actions);
                let diff = tape.add_const(logp, neg_old);
                let ratio = tape.exp(diff);
                let surr1 = tape.mul_const(ratio, adv.clone());
                let clipped = tape.clamp(ratio, 1.0 - self.cfg.clip, 1.0 + self.cfg.clip);
                let surr2 = tape.mul_const(clipped, adv);
                let surr = tape.min_elem(surr1, surr2);
                let mean_surr = tape.mean_all(surr);
                let policy_loss = tape.neg(mean_surr);

                let value = self.value.forward(&mut tape, s);
                let verr = tape.add_const(value, neg_ret);
                let vsq = tape.square(verr);
                let value_loss = tape.mean_all(vsq);

                let entropy = tape.multi_discrete_entropy(logits, ACTION_ARITY);
                let mean_entropy = tape.mean_all(entropy);

                let scaled_v = tape.scale(value_loss, self.cfg.vf_coef);
                let scaled_e = tape.scale(mean_entropy, -self.cfg.ent_coef);
                let partial = tape.add(policy_loss, scaled_v);
                let total = tape.add(partial, scaled_e);
                tape.backward(total);
                clip_grad_norm(&self.params, self.cfg.max_grad_norm);
                self.opt.step(&self.params);

                stats.policy_loss += tape.value(policy_loss).scalar_value();
                stats.value_loss += tape.value(value_loss).scalar_value();
                stats.entropy += tape.value(mean_entropy).scalar_value();
                // approx KL = mean(old_logp - new_logp).
                stats.approx_kl += -tape.value(diff).mean();
                updates += 1;
            }
        }
        if updates > 0 {
            let k = updates as f32;
            stats.policy_loss /= k;
            stats.value_loss /= k;
            stats.entropy /= k;
            stats.approx_kl /= k;
        }
        stats
    }
}

/// Greedy argmax over one head's logit row. `total_cmp` keeps the
/// ordering total: a NaN logit (e.g. from a checkpoint corrupted
/// upstream of the tape's finiteness gate) must yield a deterministic
/// pick, never a comparator panic mid-episode.
#[inline]
fn greedy_head(row: &[f32]) -> u8 {
    row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i as u8).unwrap_or(1)
}

/// Inverse-CDF sample over one head's softmax probabilities.
///
/// Floating-point rounding can leave the cumulative sum a few ULPs below
/// 1.0; a uniform draw landing in that gap falls through the loop without
/// selecting anything. This used to silently default to the *last* index
/// — an action whose probability can be ~0, with the `.max(1e-12)`
/// log-prob clamp hiding the impossible sample. The fall-through now
/// resolves to the highest-probability action (`total_cmp`: a NaN row
/// still yields a deterministic pick), so every sampled action has
/// nonzero probability.
#[inline]
fn sample_head(probs: &[f32; ACTION_ARITY], x: f32) -> usize {
    let mut acc = 0.0;
    for (a, &p) in probs.iter().enumerate() {
        acc += p;
        if x < acc {
            return a;
        }
    }
    probs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(1)
}

#[inline]
fn softmax3(logits: &[f32], out: &mut [f32; ACTION_ARITY]) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &l) in out.iter_mut().zip(logits) {
        *o = (l - max).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GlobalPolicy;

    fn make_agent(state_dim: usize, heads: usize, seed: u64) -> PpoAgent<GlobalPolicy> {
        let policy = GlobalPolicy::new(state_dim, 32, heads, seed);
        let value = ValueNet::new(state_dim, 32, seed + 1);
        PpoAgent::new(policy, value, PpoConfig { seed, ..Default::default() })
    }

    #[test]
    fn act_produces_valid_actions_and_logprob() {
        let mut agent = make_agent(4, 3, 0);
        let (actions, logp, _value) = agent.act(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(actions.len(), 3);
        assert!(actions.iter().all(|&a| (a as usize) < ACTION_ARITY));
        assert!(logp < 0.0, "log-probability must be negative, got {logp}");
        // Near-uniform initial policy: logp ≈ 3 * ln(1/3).
        assert!((logp - 3.0 * (1.0f32 / 3.0).ln()).abs() < 0.3);
    }

    #[test]
    fn deterministic_action_is_stable() {
        let mut agent = make_agent(4, 2, 1);
        let s = [0.5, -0.5, 0.2, 0.0];
        assert_eq!(agent.act_deterministic(&s), agent.act_deterministic(&s));
    }

    #[test]
    fn greedy_argmax_tolerates_nan_logits() {
        // The per-head argmax used to panic through
        // `partial_cmp(..).unwrap()` on any NaN logit; `total_cmp`
        // keeps the pick total and deterministic. (The tape refuses
        // non-finite inputs, so NaN rows are injected directly.)
        assert_eq!(greedy_head(&[f32::NAN, 0.5, -0.5]), 0); // +NaN sorts above finite
        assert_eq!(greedy_head(&[0.5, f32::NAN, -0.5]), 1);
        assert_eq!(greedy_head(&[f32::NAN, f32::NAN, f32::NAN]), 2); // last wins ties
        assert_eq!(greedy_head(&[1.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn sampling_fall_through_picks_most_probable_action() {
        // A near-degenerate softmax whose cumulative sum rounds below the
        // largest f32 the RNG can draw (0.99999994): the inverse-CDF loop
        // falls through. The old code then silently picked the last head
        // index — here an action with *zero* probability; the fall-through
        // must resolve to the most probable action instead.
        let probs = [0.5f32, 0.499_999_9, 0.0];
        let x = 0.999_999_94f32; // largest value `rng.gen::<f32>()` yields
        assert!(x >= probs.iter().sum(), "fixture no longer exercises the fall-through");
        let chosen = sample_head(&probs, x);
        assert_eq!(chosen, 0, "fall-through must pick the argmax, not the last index");
        assert!(probs[chosen] > 0.0);
    }

    #[test]
    fn sampled_actions_always_have_nonzero_probability() {
        // Sweep a degenerate distribution (one head hogging all mass, one
        // at exactly zero) over the RNG's whole draw range: no draw may
        // ever select the zero-probability action.
        let probs = [0.999_999_9f32, 9.0e-8, 0.0];
        for i in 0..=10_000u32 {
            let x = (i as f32 / 10_000.0) * 0.999_999_94;
            let chosen = sample_head(&probs, x);
            assert!(probs[chosen] > 0.0, "draw x={x} selected impossible action {chosen}");
        }
        // In-distribution draws are untouched by the fix.
        let uniform = [0.25f32, 0.5, 0.25];
        assert_eq!(sample_head(&uniform, 0.0), 0);
        assert_eq!(sample_head(&uniform, 0.3), 1);
        assert_eq!(sample_head(&uniform, 0.8), 2);
    }

    /// A contextual bandit: reward 1 for picking action 2 on every head,
    /// 0 otherwise. PPO must learn to always pick action 2.
    #[test]
    fn ppo_solves_multi_discrete_bandit() {
        let heads = 3;
        let mut agent = make_agent(2, heads, 7);
        let state = vec![1.0f32, -1.0];
        let mut final_mean = 0.0;
        for _round in 0..60 {
            let mut buffer = RolloutBuffer::new();
            for _ in 0..32 {
                let (actions, logp, value) = agent.act(&state);
                let reward = actions.iter().filter(|&&a| a == 2).count() as f32 / heads as f32;
                buffer.push(state.clone(), actions, logp, value, reward, true);
            }
            final_mean = buffer.mean_reward();
            agent.update(&buffer, 0.0);
        }
        assert!(final_mean > 0.85, "bandit mean reward only reached {final_mean}");
    }

    #[test]
    fn export_import_state_resumes_agent_bitwise() {
        let mut a = make_agent(4, 3, 9);
        let state_vec = [0.2f32, 0.4, 0.6, 0.8];
        // Advance: act + one update so RNG, params and Adam all move.
        let mut buffer = RolloutBuffer::new();
        for _ in 0..8 {
            let (actions, logp, value) = a.act(&state_vec);
            buffer.push(state_vec.to_vec(), actions, logp, value, 0.5, false);
        }
        a.update(&buffer, 0.1);
        let snap = a.export_state();

        let mut b = make_agent(4, 3, 9);
        b.import_state(&snap);

        // Both agents must now produce identical streams of actions,
        // log-probs, values and update statistics.
        let mut buf_a = RolloutBuffer::new();
        let mut buf_b = RolloutBuffer::new();
        for _ in 0..8 {
            let (aa, la, va) = a.act(&state_vec);
            let (ab, lb, vb) = b.act(&state_vec);
            assert_eq!(aa, ab);
            assert_eq!(la, lb);
            assert_eq!(va, vb);
            buf_a.push(state_vec.to_vec(), aa, la, va, 0.25, false);
            buf_b.push(state_vec.to_vec(), ab, lb, vb, 0.25, false);
        }
        let sa = a.update(&buf_a, 0.0);
        let sb = b.update(&buf_b, 0.0);
        assert_eq!(sa, sb, "resumed agent update stats diverged");
    }

    #[test]
    fn update_returns_finite_stats() {
        let mut agent = make_agent(3, 2, 3);
        let mut buffer = RolloutBuffer::new();
        let mut state = vec![0.0f32, 0.0, 0.0];
        for t in 0..8 {
            let (actions, logp, value) = agent.act(&state);
            let reward = (t % 3) as f32 * 0.1;
            buffer.push(state.clone(), actions, logp, value, reward, t == 7);
            state[0] += 0.1;
        }
        let stats = agent.update(&buffer, 0.0);
        assert!(stats.policy_loss.is_finite());
        assert!(stats.value_loss.is_finite());
        assert!(stats.entropy.is_finite() && stats.entropy > 0.0);
        assert!(stats.approx_kl.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty rollout buffer")]
    fn update_rejects_empty_buffer() {
        let mut agent = make_agent(2, 1, 0);
        let buffer = RolloutBuffer::new();
        let _ = agent.update(&buffer, 0.0);
    }

    #[test]
    fn value_estimates_move_toward_returns() {
        let mut agent = make_agent(2, 1, 11);
        let state = vec![0.3f32, 0.7];
        let before = agent.value_of(&state);
        for _ in 0..30 {
            let mut buffer = RolloutBuffer::new();
            for _ in 0..16 {
                let (actions, logp, value) = agent.act(&state);
                buffer.push(state.clone(), actions, logp, value, 1.0, true);
            }
            agent.update(&buffer, 0.0);
        }
        let after = agent.value_of(&state);
        assert!(
            (after - 1.0).abs() < (before - 1.0).abs(),
            "critic did not move toward return: {before} -> {after}"
        );
    }
}
