//! Advantage Actor-Critic (synchronous A2C).
//!
//! The paper remarks that "in addition to the PPO algorithm, other
//! reinforcement learning algorithms can also be conveniently applied to
//! the proposed framework". This module makes that concrete: a second
//! agent with the same action interface as [`PpoAgent`](crate::PpoAgent)
//! but a vanilla policy-gradient update — no ratio clipping, a single
//! pass over the rollout:
//!
//! `L = −mean(logπ(a|s) · Â) + c_v·mean((V(s) − R)²) − c_e·mean(H(π))`.
//!
//! Used by the `repro_ablation_rl` bench to quantify what PPO's clipped
//! surrogate buys GraphRARE.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graphrare_tensor::optim::{Adam, Optimizer};
use graphrare_tensor::param::{clip_grad_norm, zero_grads, Param};
use graphrare_tensor::{Matrix, Tape};

use crate::buffer::{gae, normalize, RolloutBuffer};
use crate::policy::{Policy, ValueNet, ACTION_ARITY};
use crate::snapshot::AgentState;

/// A2C hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct A2cConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ (A2C conventionally uses λ = 1, i.e. Monte-Carlo advantages;
    /// the GAE form is kept for comparability with PPO).
    pub gae_lambda: f32,
    /// Learning rate.
    pub lr: f32,
    /// Value-loss coefficient.
    pub vf_coef: f32,
    /// Entropy-bonus coefficient.
    pub ent_coef: f32,
    /// Gradient-norm clip.
    pub max_grad_norm: f32,
    /// Action-sampling seed.
    pub seed: u64,
}

impl Default for A2cConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            gae_lambda: 1.0,
            lr: 7e-4,
            vf_coef: 0.5,
            ent_coef: 0.01,
            max_grad_norm: 0.5,
            seed: 0,
        }
    }
}

/// Diagnostics of one [`A2cAgent::update`].
#[derive(Clone, Copy, Debug, Default)]
pub struct A2cStats {
    /// Policy-gradient loss.
    pub policy_loss: f32,
    /// Value loss.
    pub value_loss: f32,
    /// Mean policy entropy.
    pub entropy: f32,
}

/// A synchronous advantage actor-critic agent.
pub struct A2cAgent<P: Policy> {
    policy: P,
    value: ValueNet,
    cfg: A2cConfig,
    opt: Adam,
    rng: StdRng,
    params: Vec<Param>,
}

impl<P: Policy> A2cAgent<P> {
    /// Creates an agent from a policy, critic and config.
    pub fn new(policy: P, value: ValueNet, cfg: A2cConfig) -> Self {
        let mut params = policy.params();
        params.extend(value.params());
        Self {
            opt: Adam::new(cfg.lr, 0.0),
            rng: StdRng::seed_from_u64(cfg.seed),
            policy,
            value,
            cfg,
            params,
        }
    }

    /// Exports the complete mutable state of the agent for checkpointing
    /// (see [`AgentState`]).
    pub fn export_state(&self) -> AgentState {
        AgentState {
            params: self.params.iter().map(Param::value).collect(),
            adam: self.opt.export_state(&self.params),
            rng: self.rng.state(),
        }
    }

    /// Restores state captured by [`A2cAgent::export_state`] onto an agent
    /// built from the same configuration.
    ///
    /// # Panics
    /// Panics on parameter count/shape mismatch — checkpoints are
    /// validated by the store layer before they reach an agent.
    pub fn import_state(&mut self, state: &AgentState) {
        assert_eq!(state.params.len(), self.params.len(), "agent import: param count mismatch");
        for (p, m) in self.params.iter().zip(&state.params) {
            p.set_value(m.clone());
        }
        self.opt.import_state(&self.params, &state.adam);
        self.rng = StdRng::from_state(state.rng);
    }

    /// Samples an action; returns `(actions, joint log-prob, value)`.
    pub fn act(&mut self, state: &[f32]) -> (Vec<u8>, f32, f32) {
        let mut tape = Tape::new();
        let s = tape.constant(Matrix::row_vector(state));
        let l = self.policy.logits(&mut tape, s);
        let v = self.value.forward(&mut tape, s);
        let logits = tape.value(l).row(0).to_vec();
        let value = tape.value(v).scalar_value();

        let heads = self.policy.heads();
        let mut actions = Vec::with_capacity(heads);
        let mut log_prob = 0.0f32;
        for h in 0..heads {
            let row = &logits[h * ACTION_ARITY..(h + 1) * ACTION_ARITY];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let x: f32 = self.rng.gen();
            let mut acc = 0.0;
            let mut chosen = ACTION_ARITY - 1;
            for (a, &e) in exps.iter().enumerate() {
                acc += e / sum;
                if x < acc {
                    chosen = a;
                    break;
                }
            }
            actions.push(chosen as u8);
            log_prob += (exps[chosen] / sum).max(1e-12).ln();
        }
        (actions, log_prob, value)
    }

    /// Critic value of a state.
    pub fn value_of(&self, state: &[f32]) -> f32 {
        let mut tape = Tape::new();
        let s = tape.constant(Matrix::row_vector(state));
        let v = self.value.forward(&mut tape, s);
        tape.value(v).scalar_value()
    }

    /// One synchronous update over the whole rollout.
    pub fn update(&mut self, buffer: &RolloutBuffer, last_value: f32) -> A2cStats {
        assert!(!buffer.is_empty(), "update: empty rollout buffer");
        let n = buffer.len();
        let (mut advantages, returns) = gae(
            &buffer.rewards,
            &buffer.values,
            &buffer.dones,
            last_value,
            self.cfg.gamma,
            self.cfg.gae_lambda,
        );
        normalize(&mut advantages);

        let heads = self.policy.heads();
        let state_dim = self.policy.state_dim();
        let mut states = Matrix::zeros(n, state_dim);
        let mut actions = Vec::with_capacity(n * heads);
        let mut adv = Matrix::zeros(n, 1);
        let mut neg_ret = Matrix::zeros(n, 1);
        for i in 0..n {
            states.row_mut(i).copy_from_slice(&buffer.states[i]);
            actions.extend_from_slice(&buffer.actions[i]);
            adv.set(i, 0, advantages[i]);
            neg_ret.set(i, 0, -returns[i]);
        }

        zero_grads(&self.params);
        let mut tape = Tape::new();
        let s = tape.constant(states);
        let logits = self.policy.logits(&mut tape, s);
        let logp = tape.multi_discrete_log_prob(logits, ACTION_ARITY, Rc::new(actions));
        let weighted = tape.mul_const(logp, Rc::new(adv));
        let mean_obj = tape.mean_all(weighted);
        let policy_loss = tape.neg(mean_obj);

        let value = self.value.forward(&mut tape, s);
        let verr = tape.add_const(value, Rc::new(neg_ret));
        let vsq = tape.square(verr);
        let value_loss = tape.mean_all(vsq);

        let entropy = tape.multi_discrete_entropy(logits, ACTION_ARITY);
        let mean_entropy = tape.mean_all(entropy);

        let scaled_v = tape.scale(value_loss, self.cfg.vf_coef);
        let scaled_e = tape.scale(mean_entropy, -self.cfg.ent_coef);
        let partial = tape.add(policy_loss, scaled_v);
        let total = tape.add(partial, scaled_e);
        tape.backward(total);
        clip_grad_norm(&self.params, self.cfg.max_grad_norm);
        self.opt.step(&self.params);

        A2cStats {
            policy_loss: tape.value(policy_loss).scalar_value(),
            value_loss: tape.value(value_loss).scalar_value(),
            entropy: tape.value(mean_entropy).scalar_value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GlobalPolicy;

    fn make_agent(state_dim: usize, heads: usize, seed: u64) -> A2cAgent<GlobalPolicy> {
        let policy = GlobalPolicy::new(state_dim, 32, heads, seed);
        let value = ValueNet::new(state_dim, 32, seed + 1);
        A2cAgent::new(policy, value, A2cConfig { seed, ..Default::default() })
    }

    #[test]
    fn act_shape_and_logprob() {
        let mut agent = make_agent(4, 3, 0);
        let (actions, logp, _) = agent.act(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(actions.len(), 3);
        assert!(actions.iter().all(|&a| (a as usize) < ACTION_ARITY));
        assert!(logp < 0.0);
    }

    #[test]
    fn a2c_solves_multi_discrete_bandit() {
        let heads = 3;
        let mut agent = make_agent(2, heads, 5);
        let state = vec![1.0f32, -1.0];
        let mut final_mean = 0.0;
        for _ in 0..150 {
            let mut buffer = RolloutBuffer::new();
            for _ in 0..32 {
                let (actions, logp, value) = agent.act(&state);
                let reward = actions.iter().filter(|&&a| a == 2).count() as f32 / heads as f32;
                buffer.push(state.clone(), actions, logp, value, reward, true);
            }
            final_mean = buffer.mean_reward();
            agent.update(&buffer, 0.0);
        }
        assert!(final_mean > 0.8, "bandit mean reward only reached {final_mean}");
    }

    #[test]
    fn update_stats_finite() {
        let mut agent = make_agent(3, 2, 1);
        let mut buffer = RolloutBuffer::new();
        for t in 0..6 {
            let (actions, logp, value) = agent.act(&[0.1 * t as f32, 0.0, 0.5]);
            buffer.push(vec![0.1 * t as f32, 0.0, 0.5], actions, logp, value, 0.1, t == 5);
        }
        let stats = agent.update(&buffer, 0.0);
        assert!(stats.policy_loss.is_finite());
        assert!(stats.value_loss.is_finite());
        assert!(stats.entropy > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty rollout buffer")]
    fn rejects_empty_buffer() {
        let mut agent = make_agent(2, 1, 0);
        let _ = agent.update(&RolloutBuffer::new(), 0.0);
    }
}
