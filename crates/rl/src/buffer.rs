//! Rollout storage and generalised advantage estimation.

/// One on-policy rollout: transitions collected between PPO updates.
#[derive(Clone, Debug, Default)]
pub struct RolloutBuffer {
    /// Flattened states, one `Vec` per step.
    pub states: Vec<Vec<f32>>,
    /// Chosen action index per head, one `Vec` per step.
    pub actions: Vec<Vec<u8>>,
    /// Behaviour-policy log-probability of the joint action.
    pub log_probs: Vec<f32>,
    /// Critic value estimates `V(s_t)` at collection time.
    pub values: Vec<f32>,
    /// Rewards `r_t`.
    pub rewards: Vec<f32>,
    /// Episode-termination flags.
    pub dones: Vec<bool>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one transition.
    pub fn push(
        &mut self,
        state: Vec<f32>,
        actions: Vec<u8>,
        log_prob: f32,
        value: f32,
        reward: f32,
        done: bool,
    ) {
        self.states.push(state);
        self.actions.push(actions);
        self.log_probs.push(log_prob);
        self.values.push(value);
        self.rewards.push(reward);
        self.dones.push(done);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }

    /// Discards all transitions, keeping allocations.
    pub fn clear(&mut self) {
        self.states.clear();
        self.actions.clear();
        self.log_probs.clear();
        self.values.clear();
        self.rewards.clear();
        self.dones.clear();
    }

    /// Mean reward of the stored transitions (0 when empty).
    pub fn mean_reward(&self) -> f32 {
        if self.rewards.is_empty() {
            0.0
        } else {
            self.rewards.iter().sum::<f32>() / self.rewards.len() as f32
        }
    }
}

/// Generalised advantage estimation (Schulman et al. 2016).
///
/// `last_value` bootstraps the value beyond the final stored transition
/// (ignored if that transition ended an episode). Returns
/// `(advantages, returns)` with `returns[t] = advantages[t] + values[t]`.
pub fn gae(
    rewards: &[f32],
    values: &[f32],
    dones: &[bool],
    last_value: f32,
    gamma: f32,
    lambda: f32,
) -> (Vec<f32>, Vec<f32>) {
    let n = rewards.len();
    assert_eq!(values.len(), n, "gae: values length mismatch");
    assert_eq!(dones.len(), n, "gae: dones length mismatch");
    let mut advantages = vec![0f32; n];
    let mut next_adv = 0f32;
    let mut next_value = last_value;
    for t in (0..n).rev() {
        let nonterminal = if dones[t] { 0.0 } else { 1.0 };
        let delta = rewards[t] + gamma * next_value * nonterminal - values[t];
        next_adv = delta + gamma * lambda * nonterminal * next_adv;
        advantages[t] = next_adv;
        next_value = values[t];
    }
    let returns = advantages.iter().zip(values).map(|(&a, &v)| a + v).collect();
    (advantages, returns)
}

/// In-place standardisation to zero mean, unit variance (no-op for fewer
/// than two elements or zero variance).
pub fn normalize(values: &mut [f32]) {
    if values.len() < 2 {
        return;
    }
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / values.len() as f32;
    let std = var.sqrt();
    if std < 1e-8 {
        return;
    }
    for v in values {
        *v = (*v - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gae_single_step_is_td_error() {
        let (adv, ret) = gae(&[1.0], &[0.5], &[false], 2.0, 0.9, 0.8);
        // delta = 1 + 0.9*2 - 0.5 = 2.3
        assert!((adv[0] - 2.3).abs() < 1e-6);
        assert!((ret[0] - 2.8).abs() < 1e-6);
    }

    #[test]
    fn gae_terminal_ignores_bootstrap() {
        let (adv, _) = gae(&[1.0], &[0.5], &[true], 100.0, 0.9, 0.8);
        assert!((adv[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gae_two_steps_hand_computed() {
        // gamma=1, lambda=1: advantage = sum of future deltas.
        let rewards = [1.0, 2.0];
        let values = [0.0, 0.0];
        let dones = [false, false];
        let (adv, ret) = gae(&rewards, &values, &dones, 0.0, 1.0, 1.0);
        assert!((adv[1] - 2.0).abs() < 1e-6);
        assert!((adv[0] - 3.0).abs() < 1e-6);
        assert_eq!(adv, ret, "zero values make returns equal advantages");
    }

    #[test]
    fn gae_lambda_zero_is_one_step_td() {
        let rewards = [1.0, 1.0, 1.0];
        let values = [0.5, 0.5, 0.5];
        let dones = [false, false, false];
        let (adv, _) = gae(&rewards, &values, &dones, 0.5, 0.9, 0.0);
        for &a in &adv {
            // delta = 1 + 0.9*0.5 - 0.5 = 0.95 at every step.
            assert!((a - 0.95).abs() < 1e-6);
        }
    }

    #[test]
    fn normalize_standardises() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        normalize(&mut v);
        let mean: f32 = v.iter().sum::<f32>() / 4.0;
        let var: f32 = v.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_degenerate_noop() {
        let mut one = vec![3.0];
        normalize(&mut one);
        assert_eq!(one, vec![3.0]);
        let mut constant = vec![2.0, 2.0, 2.0];
        normalize(&mut constant);
        assert_eq!(constant, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn buffer_roundtrip_and_clear() {
        let mut b = RolloutBuffer::new();
        b.push(vec![0.0], vec![1], -0.5, 0.2, 1.0, false);
        b.push(vec![1.0], vec![2], -0.7, 0.1, 3.0, true);
        assert_eq!(b.len(), 2);
        assert!((b.mean_reward() - 2.0).abs() < 1e-6);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.mean_reward(), 0.0);
    }
}
