//! # graphrare-rl
//!
//! Deep reinforcement learning for GraphRARE: a from-scratch Proximal
//! Policy Optimization implementation over multi-discrete action spaces,
//! replacing the paper's OpenAI Gym + Stable-Baselines3 stack.
//!
//! * [`policy`] — multi-discrete stochastic policies: the paper's global
//!   MLP ([`policy::GlobalPolicy`]) and a weight-shared per-node variant
//!   ([`policy::SharedPolicy`]) that scales to large graphs, plus the
//!   critic ([`policy::ValueNet`]).
//! * [`buffer`] — rollout storage and GAE(λ) advantage estimation.
//! * [`ppo`] — the clipped-surrogate PPO update ([`ppo::PpoAgent`]).
//! * [`a2c`] — a vanilla advantage actor-critic ([`a2c::A2cAgent`]),
//!   demonstrating the paper's claim that the framework is agnostic to
//!   the RL algorithm.
//!
//! The action convention is GraphRARE's Sec. IV-B: every head picks from
//! `{−1 (decrement), 0 (keep), +1 (increment)}`, encoded as indices
//! `{0, 1, 2}`.

#![warn(missing_docs)]

pub mod a2c;
pub mod buffer;
pub mod policy;
pub mod ppo;
pub mod snapshot;

pub use a2c::{A2cAgent, A2cConfig, A2cStats};
pub use buffer::{gae, normalize, RolloutBuffer};
pub use policy::{GlobalPolicy, Policy, SharedPolicy, ValueNet, ACTION_ARITY};
pub use ppo::{PpoAgent, PpoConfig, PpoStats};
pub use snapshot::AgentState;
