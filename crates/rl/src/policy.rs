//! Multi-discrete stochastic policies.
//!
//! GraphRARE's action space is multi-discrete (Sec. IV-B): one
//! `{−1, 0, +1}` head per state component (`k_i` and `d_i` for every
//! node). Two policy parameterisations are provided:
//!
//! * [`GlobalPolicy`] — an MLP over the *entire* state vector producing
//!   all head logits at once; this matches the paper's Stable-Baselines3
//!   `MlpPolicy` over the flattened multi-discrete state.
//! * [`SharedPolicy`] — one small MLP applied per node (weight sharing
//!   across nodes), producing that node's `k` and `d` heads. Scales to
//!   large graphs where the global MLP's first layer would be `O(N²)`.
//!
//! Both emit logits in the layout consumed by
//! [`Tape::multi_discrete_log_prob`]: heads are interleaved per node —
//! head `2i` is node `i`'s `k` head, head `2i+1` its `d` head.

use rand::rngs::StdRng;
use rand::SeedableRng;

use graphrare_tensor::{init, Param, Tape, Var};

/// Number of choices per head: decrement, keep, increment.
pub const ACTION_ARITY: usize = 3;

/// A differentiable mapping from batched states to multi-discrete logits.
pub trait Policy {
    /// Produces `B x (heads · ACTION_ARITY)` logits for `B x state_dim`
    /// states already on the tape.
    fn logits(&self, tape: &mut Tape, states: Var) -> Var;

    /// Trainable parameters.
    fn params(&self) -> Vec<Param>;

    /// Number of action heads.
    fn heads(&self) -> usize;

    /// Dimensionality of the state vector this policy consumes.
    fn state_dim(&self) -> usize;
}

/// MLP over the full state vector (the paper's configuration).
pub struct GlobalPolicy {
    w1: Param,
    b1: Param,
    w2: Param,
    b2: Param,
    heads: usize,
}

impl GlobalPolicy {
    /// Creates a policy for `heads` action heads over `state_dim` inputs.
    pub fn new(state_dim: usize, hidden: usize, heads: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = heads * ACTION_ARITY;
        Self {
            w1: Param::new("policy.w1", init::glorot_uniform(&mut rng, state_dim, hidden)),
            b1: Param::new("policy.b1", graphrare_tensor::Matrix::zeros(1, hidden)),
            // Small output gain: near-uniform initial policy (SB3 style).
            w2: Param::new("policy.w2", init::scaled_normal(&mut rng, hidden, out, 0.01)),
            b2: Param::new("policy.b2", graphrare_tensor::Matrix::zeros(1, out)),
            heads,
        }
    }
}

impl Policy for GlobalPolicy {
    fn logits(&self, tape: &mut Tape, states: Var) -> Var {
        let w1 = tape.param(&self.w1);
        let b1 = tape.param(&self.b1);
        let w2 = tape.param(&self.w2);
        let b2 = tape.param(&self.b2);
        let h = tape.matmul(states, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.tanh(h);
        let o = tape.matmul(h, w2);
        tape.add_bias(o, b2)
    }

    fn params(&self) -> Vec<Param> {
        vec![self.w1.clone(), self.b1.clone(), self.w2.clone(), self.b2.clone()]
    }

    fn heads(&self) -> usize {
        self.heads
    }

    fn state_dim(&self) -> usize {
        self.w1.shape().0
    }
}

/// Weight-shared per-node policy.
///
/// The state is interpreted as `nodes` blocks of `node_feat` consecutive
/// entries; the same MLP maps each block to its node's `2 · ACTION_ARITY`
/// logits (a `k` head and a `d` head).
pub struct SharedPolicy {
    w1: Param,
    b1: Param,
    w2: Param,
    b2: Param,
    nodes: usize,
    node_feat: usize,
}

impl SharedPolicy {
    /// Creates a shared policy for `nodes` nodes with `node_feat` features
    /// per node.
    pub fn new(nodes: usize, node_feat: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = 2 * ACTION_ARITY;
        Self {
            w1: Param::new("shared.w1", init::glorot_uniform(&mut rng, node_feat, hidden)),
            b1: Param::new("shared.b1", graphrare_tensor::Matrix::zeros(1, hidden)),
            w2: Param::new("shared.w2", init::scaled_normal(&mut rng, hidden, out, 0.01)),
            b2: Param::new("shared.b2", graphrare_tensor::Matrix::zeros(1, out)),
            nodes,
            node_feat,
        }
    }
}

impl Policy for SharedPolicy {
    fn logits(&self, tape: &mut Tape, states: Var) -> Var {
        let batch = tape.value(states).rows();
        // (B, N·F) -> (B·N, F): row-major reinterpretation.
        let per_node = tape.reshape(states, batch * self.nodes, self.node_feat);
        let w1 = tape.param(&self.w1);
        let b1 = tape.param(&self.b1);
        let w2 = tape.param(&self.w2);
        let b2 = tape.param(&self.b2);
        let h = tape.matmul(per_node, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.tanh(h);
        let o = tape.matmul(h, w2);
        let o = tape.add_bias(o, b2);
        // (B·N, 6) -> (B, N·6): node-interleaved head layout.
        tape.reshape(o, batch, self.nodes * 2 * ACTION_ARITY)
    }

    fn params(&self) -> Vec<Param> {
        vec![self.w1.clone(), self.b1.clone(), self.w2.clone(), self.b2.clone()]
    }

    fn heads(&self) -> usize {
        self.nodes * 2
    }

    fn state_dim(&self) -> usize {
        self.nodes * self.node_feat
    }
}

/// MLP state-value function `V(s)`.
pub struct ValueNet {
    w1: Param,
    b1: Param,
    w2: Param,
    b2: Param,
}

impl ValueNet {
    /// Creates a critic over `state_dim` inputs.
    pub fn new(state_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            w1: Param::new("value.w1", init::glorot_uniform(&mut rng, state_dim, hidden)),
            b1: Param::new("value.b1", graphrare_tensor::Matrix::zeros(1, hidden)),
            w2: Param::new("value.w2", init::scaled_normal(&mut rng, hidden, 1, 1.0)),
            b2: Param::new("value.b2", graphrare_tensor::Matrix::zeros(1, 1)),
        }
    }

    /// `B x 1` state values.
    pub fn forward(&self, tape: &mut Tape, states: Var) -> Var {
        let w1 = tape.param(&self.w1);
        let b1 = tape.param(&self.b1);
        let w2 = tape.param(&self.w2);
        let b2 = tape.param(&self.b2);
        let h = tape.matmul(states, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.tanh(h);
        let o = tape.matmul(h, w2);
        tape.add_bias(o, b2)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Param> {
        vec![self.w1.clone(), self.b1.clone(), self.w2.clone(), self.b2.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_tensor::Matrix;

    #[test]
    fn global_policy_logit_shape() {
        let p = GlobalPolicy::new(8, 16, 4, 0);
        let mut t = Tape::new();
        let s = t.constant(Matrix::zeros(5, 8));
        let l = p.logits(&mut t, s);
        assert_eq!(t.value(l).shape(), (5, 12));
        assert_eq!(p.heads(), 4);
        assert_eq!(p.state_dim(), 8);
    }

    #[test]
    fn initial_policy_is_near_uniform() {
        let p = GlobalPolicy::new(6, 16, 3, 1);
        let mut t = Tape::new();
        let s = t.constant(Matrix::ones(1, 6));
        let l = p.logits(&mut t, s);
        // Tiny output gain: logits near zero, so distribution near uniform.
        assert!(t.value(l).as_slice().iter().all(|&v| v.abs() < 0.2));
    }

    #[test]
    fn shared_policy_shapes_and_weight_sharing() {
        let p = SharedPolicy::new(4, 2, 8, 0);
        assert_eq!(p.heads(), 8);
        assert_eq!(p.state_dim(), 8);
        let mut t = Tape::new();
        // Two identical node-blocks must get identical logits.
        let s = t.constant(Matrix::from_vec(1, 8, vec![1.0, 2.0, 1.0, 2.0, 0.0, 0.0, 3.0, 1.0]));
        let l = p.logits(&mut t, s);
        let lv = t.value(l);
        assert_eq!(lv.shape(), (1, 24));
        let node0 = &lv.row(0)[0..6];
        let node1 = &lv.row(0)[6..12];
        assert_eq!(node0, node1, "shared weights must give equal logits for equal inputs");
    }

    #[test]
    fn value_net_scalar_output() {
        let v = ValueNet::new(8, 16, 0);
        let mut t = Tape::new();
        let s = t.constant(Matrix::ones(3, 8));
        let out = v.forward(&mut t, s);
        assert_eq!(t.value(out).shape(), (3, 1));
        assert_eq!(v.params().len(), 4);
    }
}
