//! Checkpointable agent state.
//!
//! Both agents ([`PpoAgent`](crate::PpoAgent), [`A2cAgent`](crate::A2cAgent))
//! carry three pieces of mutable state: the parameter values of the policy
//! and the critic, the Adam moment estimates, and the action-sampling RNG
//! stream. [`AgentState`] captures all three so that an agent rebuilt from
//! the same configuration and restored from a snapshot continues its
//! trajectory — actions sampled, gradients applied — bit-for-bit.

use graphrare_tensor::optim::AdamSnapshot;
use graphrare_tensor::Matrix;

/// Complete serialisable state of an RL agent.
///
/// `params` holds the policy parameters followed by the critic parameters,
/// in the order of the agent's internal parameter list (the same order the
/// optimiser sees). The snapshot is architecture-agnostic: restoring it
/// onto an agent with a different policy shape is a caller error, caught
/// by shape assertions (checkpoints are validated by the store layer
/// before they reach an agent).
#[derive(Clone, Debug)]
pub struct AgentState {
    /// Policy + critic parameter values, in agent parameter order.
    pub params: Vec<Matrix>,
    /// Adam step counter and moment estimates over the same parameters.
    pub adam: AdamSnapshot,
    /// Action-sampling RNG stream state.
    pub rng: [u64; 4],
}
