//! Property suite: the incremental rewiring engine is bit-identical to the
//! reference path (`TopologyOptimizer::materialize` + a fresh
//! `GraphTensors`) over random graphs, random action traces and all three
//! edit modes — including traces engineered to trip the deletion pass's
//! "never isolate an endpoint" guard, and traces proposed by every
//! first-class [`Rewirer`](graphrare::Rewirer) strategy (the driver's
//! actual access pattern per `--rewirer` value).

use proptest::prelude::*;

use graphrare::rewire::RewiredGraph;
use graphrare::rewirer::build_rewirer;
use graphrare::topology::{EditMode, TopologyOptimizer};
use graphrare::{GraphRareConfig, RewirerKind, TopoState};
use graphrare_entropy::{
    CandidatePool, EntropySequences, RelativeEntropyConfig, RelativeEntropyTable, SequenceConfig,
};
use graphrare_gnn::GraphTensors;
use graphrare_graph::{metrics, Graph};
use graphrare_tensor::Matrix;

/// Deterministic pseudo-features: enough variation for non-trivial entropy
/// rankings without an RNG in the strategy.
fn features(n: usize) -> Matrix {
    Matrix::from_fn(n, 4, |r, c| ((r * 7 + c * 3 + r * c) % 5) as f32 / 4.0)
}

fn optimizer(n: usize, edges: &[(usize, usize)], mode: EditMode) -> TopologyOptimizer {
    let labels: Vec<usize> = (0..n).map(|v| v % 3).collect();
    let g = Graph::from_edges(n, edges, features(n), labels, 3);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let seqs = EntropySequences::build(
        &g,
        &table,
        &SequenceConfig { pool: CandidatePool::RemoteRing { hops: 3 }, max_additions: 8 },
    );
    TopologyOptimizer::new(g, seqs, mode)
}

fn mode_of(idx: u8) -> EditMode {
    match idx % 3 {
        0 => EditMode::Both,
        1 => EditMode::AddOnly,
        _ => EditMode::RemoveOnly,
    }
}

/// The full equivalence contract for one state: graph, edge count,
/// homophily bits and all four propagation operators.
fn assert_equivalent(rw: &RewiredGraph, topo: &TopologyOptimizer, state: &TopoState) {
    let want = topo.materialize(state);
    assert_eq!(rw.graph().edge_vec(), want.edge_vec(), "edge sets diverge");
    assert_eq!(rw.num_edges(), want.num_edges(), "edge counts diverge");
    assert_eq!(
        rw.homophily_ratio().to_bits(),
        metrics::homophily_ratio(&want).to_bits(),
        "homophily bits diverge"
    );
    let fresh = GraphTensors::new(&want);
    assert_eq!(*rw.tensors().gcn_norm(), *fresh.gcn_norm(), "gcn_norm diverges");
    assert_eq!(*rw.tensors().row_norm(), *fresh.row_norm(), "row_norm diverges");
    assert_eq!(*rw.tensors().two_hop(), *fresh.two_hop(), "two_hop diverges");
    assert_eq!(*rw.tensors().attention(), *fresh.attention(), "attention diverges");
}

/// Drives one engine through a trace of ±1 action vectors (the driver's
/// access pattern), checking the contract after every transition.
fn run_trace(
    topo: &TopologyOptimizer,
    mut state: TopoState,
    trace: &[Vec<u8>],
    reset_every: usize,
) {
    let mut rw = RewiredGraph::new(topo);
    // Build all operators up-front so each step exercises row patching.
    rw.tensors().gcn_norm();
    rw.tensors().row_norm();
    rw.tensors().two_hop();
    rw.tensors().attention();
    for (i, actions) in trace.iter().enumerate() {
        state.apply(actions);
        rw.apply(topo, &state).unwrap();
        assert_equivalent(&rw, topo, &state);
        if reset_every > 0 && (i + 1) % reset_every == 0 {
            // Episodic reset: the next apply must absorb the jump to S0.
            state.reset();
        }
    }
    // Resync after a possibly trailing reset, like the driver's finish().
    rw.apply(topo, &state).unwrap();
    assert_equivalent(&rw, topo, &state);
}

/// `(n, edges, mode, trace, reset_every)` — one random replay instance.
type Instance = (usize, Vec<(usize, usize)>, u8, Vec<Vec<u8>>, usize);

fn arb_instance() -> impl Strategy<Value = Instance> {
    (8usize..24).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), n / 2..3 * n),
            0u8..3,
            proptest::collection::vec(proptest::collection::vec(0u8..3, 2 * n), 1..8),
            0usize..4,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random graphs x random ±1 action traces x all edit modes, with the
    /// driver's bounds (`d_bounds` keeps one neighbour per ego node but
    /// neighbours' deletions can still cascade into the guard).
    #[test]
    fn incremental_matches_materialize((n, edges, mode_idx, trace, reset_every) in arb_instance()) {
        let mode = mode_of(mode_idx);
        let topo = optimizer(n, &edges, mode);
        let state = TopoState::new(topo.k_bounds(6), topo.d_bounds(6));
        run_trace(&topo, state, &trace, reset_every);
    }

    /// Guard-heavy variant: `d` bounds cover every neighbour (more than the
    /// driver ever allows), so deletion traces routinely threaten to
    /// isolate degree-1 endpoints and force the sequential-guard
    /// re-simulation path.
    #[test]
    fn guard_cascades_match_materialize((n, edges, _, trace, reset_every) in arb_instance()) {
        let topo = optimizer(n, &edges, EditMode::Both);
        let base = topo.base();
        let k_max = topo.k_bounds(6);
        let d_max: Vec<u16> = (0..n).map(|v| base.degree(v) as u16).collect();
        let state = TopoState::new(k_max, d_max);
        run_trace(&topo, state, &trace, reset_every);
    }
}

/// Deterministic pseudo-random edge list dense enough that most rewiring
/// steps dirty a large share of operator rows (the bench's Dense regime).
fn dense_edges(n: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for v in 0..n {
        edges.push((v, (v + 1) % n)); // ring keeps every degree >= 2
        edges.push((v, (v * v + 3 * v + 1) % n));
        edges.push((v, (v * 7 + 5) % n));
    }
    edges
}

/// Dense-regime trace: every node's `k` **and** `d` counter moves every
/// step (no holds), the same shape `bench_rewire`'s Dense regime drives.
/// Each step's batch re-weights far more neighbour rows than it resizes,
/// so the per-row patch repeatedly takes the in-place nnz-unchanged path
/// — and with `d` bounds covering every neighbour the risky census stays
/// populated, so the kept-cache sees both reuse and invalidation as
/// prefixes move. Episodic resets slam every deletion prefix to zero and
/// grow it back, covering cache invalidation in both directions. The
/// per-step assertion is byte-identity of graph, homophily and all four
/// operators against from-scratch builds.
#[test]
fn dense_traces_match_materialize() {
    let n = 40;
    for reset_every in [0usize, 2] {
        let topo = optimizer(n, &dense_edges(n), EditMode::Both);
        let base = topo.base();
        let k_max = topo.k_bounds(6);
        let d_max: Vec<u16> = (0..n).map(|v| base.degree(v) as u16).collect();
        let state = TopoState::new(k_max, d_max);
        let trace: Vec<Vec<u8>> = (0..6u16)
            .map(|s| {
                (0..2 * n)
                    .map(|i| {
                        // Only up/down actions — every counter moves.
                        if (i as u16 * 7 + s * 11 + i as u16 * s).is_multiple_of(2) {
                            2
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect();
        run_trace(&topo, state, &trace, reset_every);
    }
}

/// Records the action trace one strategy actually proposes against `topo`,
/// mirroring the driver's loop (propose → apply → feedback, episodic reset
/// at window ends). The recorded vectors are then replayed through
/// [`run_trace`], which checks the bit-identity contract after every
/// transition — so each strategy is validated on the exact edit patterns
/// it emits, not just on random vectors.
fn strategy_trace(
    topo: &TopologyOptimizer,
    cfg: &GraphRareConfig,
    kind: RewirerKind,
    mut state: TopoState,
    steps: usize,
    reset_every: usize,
) -> Vec<Vec<u8>> {
    let mut c = *cfg;
    c.rewirer = kind;
    // Every other node "training-labelled", like a transductive split.
    let train: Vec<usize> = (0..topo.base().num_nodes()).step_by(2).collect();
    let mut rw = build_rewirer(topo, &c, &train);
    let mut trace = Vec::new();
    for i in 0..steps {
        let actions = rw.propose(&state);
        state.apply(&actions);
        let window_end = reset_every > 0 && (i + 1) % reset_every == 0;
        rw.feedback(0.05, window_end, reset_every > 0, &state);
        if window_end {
            state.reset();
        }
        trace.push(actions);
    }
    trace
}

/// Every `--rewirer` strategy's own proposals replay bit-identically,
/// with and without episodic resets, under the driver's default bounds.
#[test]
fn strategy_proposed_traces_match_materialize() {
    let n = 18;
    let edges = dense_edges(n);
    let cfg = GraphRareConfig::fast().with_seed(11);
    for kind in RewirerKind::ALL {
        for reset_every in [0usize, 3] {
            let topo = optimizer(n, &edges, EditMode::Both);
            let state = TopoState::new(topo.k_bounds(cfg.k_cap), topo.d_bounds(cfg.k_cap));
            let trace = strategy_trace(&topo, &cfg, kind, state.clone(), 9, reset_every);
            run_trace(&topo, state, &trace, reset_every);
        }
    }
}

/// Guard-cascade variant of the strategy harness: a sparse graph with
/// `d` bounds covering every neighbour, so strategy-proposed deletion
/// prefixes routinely threaten to isolate degree-1 endpoints and force
/// the sequential-guard re-simulation on both the incremental and the
/// reference path.
#[test]
fn strategy_traces_survive_guard_cascades() {
    let n = 14;
    // A ring plus a few chords and two pendant nodes: plenty of degree-1
    // and degree-2 endpoints for deletions to threaten.
    let mut edges: Vec<(usize, usize)> = (0..n - 2).map(|v| (v, (v + 1) % (n - 2))).collect();
    edges.extend([(0, 5), (2, 8), (n - 2, 3), (n - 1, 7)]);
    let mut cfg = GraphRareConfig::fast().with_seed(23);
    cfg.k_cap = 64; // heuristic targets may reach deep into the rankings
    for kind in RewirerKind::ALL {
        for reset_every in [0usize, 4] {
            let topo = optimizer(n, &edges, EditMode::Both);
            let base = topo.base();
            let k_max = topo.k_bounds(cfg.k_cap);
            let d_max: Vec<u16> = (0..n).map(|v| base.degree(v) as u16).collect();
            let state = TopoState::new(k_max, d_max);
            let trace = strategy_trace(&topo, &cfg, kind, state.clone(), 10, reset_every);
            run_trace(&topo, state, &trace, reset_every);
        }
    }
}

/// Arbitrary counter jumps (checkpoint restores) rather than ±1 walks.
#[test]
fn checkpoint_jumps_match_materialize() {
    let edges: Vec<(usize, usize)> =
        vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3), (1, 4), (6, 0), (7, 6)];
    let topo = optimizer(8, &edges, EditMode::Both);
    let base = topo.base();
    let k_max = topo.k_bounds(8);
    let d_max: Vec<u16> = (0..8).map(|v| base.degree(v) as u16).collect();
    let mut state = TopoState::new(k_max, d_max);
    let mut rw = RewiredGraph::new(&topo);
    rw.tensors().gcn_norm();
    rw.tensors().two_hop();
    let jumps: &[&[(usize, usize, usize)]] = &[
        &[(0, 2, 1), (3, 1, 0), (6, 0, 1)],
        &[(0, 0, 3), (1, 0, 2), (2, 0, 2), (7, 0, 1)], // deletion-heavy: guards fire
        &[(4, 3, 0), (5, 2, 0)],
        &[],
        &[(0, 1, 1), (1, 1, 1), (2, 1, 1), (3, 1, 1), (4, 1, 1), (5, 1, 1)],
    ];
    for jump in jumps {
        state.reset();
        for &(v, k, d) in *jump {
            state.set_k(v, k);
            state.set_d(v, d);
        }
        rw.apply(&topo, &state).unwrap();
        assert_equivalent(&rw, &topo, &state);
    }
}
