//! End-to-end test of the `graphrare` CLI binary: write a graph bundle,
//! run the tool, read the optimised bundle back.

use std::path::PathBuf;
use std::process::Command;

use graphrare_datasets::{generate_spec, DatasetSpec};
use graphrare_graph::{io, metrics};

fn fixture_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphrare-cli-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_graph() -> graphrare_graph::Graph {
    generate_spec(
        &DatasetSpec {
            name: "cli",
            num_nodes: 50,
            num_edges: 110,
            feat_dim: 16,
            num_classes: 3,
            homophily: 0.15,
            degree_exponent: 0.3,
            feature_signal: 0.8,
            feature_density: 0.05,
        },
        1,
    )
}

#[test]
fn cli_optimizes_a_graph_bundle() {
    let dir = fixture_dir("roundtrip");
    let input = dir.join("toy");
    let output = dir.join("toy-optimized");
    let g = small_graph();
    io::write_graph(&g, &input).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_graphrare"))
        .args([
            "--input",
            input.to_str().unwrap(),
            "--output",
            output.to_str().unwrap(),
            "--steps",
            "16",
            "--seed",
            "3",
        ])
        .output()
        .expect("CLI binary runs");
    assert!(status.status.success(), "CLI failed: {}", String::from_utf8_lossy(&status.stderr));
    let stdout = String::from_utf8_lossy(&status.stdout);
    assert!(stdout.contains("test accuracy"), "missing summary: {stdout}");

    let optimized = io::read_graph(&output).unwrap();
    assert_eq!(optimized.num_nodes(), g.num_nodes());
    assert_eq!(optimized.labels(), g.labels());
    let h = metrics::homophily_ratio(&optimized);
    assert!((0.0..=1.0).contains(&h));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cli_telemetry_out_writes_valid_jsonl_and_quiet_stderr() {
    let dir = fixture_dir("telemetry");
    let input = dir.join("toy");
    let events = dir.join("events.jsonl");
    io::write_graph(&small_graph(), &input).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_graphrare"))
        .args([
            "--input",
            input.to_str().unwrap(),
            "--steps",
            "8",
            "--seed",
            "3",
            "--quiet",
            "--telemetry-out",
            events.to_str().unwrap(),
        ])
        .output()
        .expect("CLI binary runs");
    assert!(out.status.success(), "CLI failed: {}", String::from_utf8_lossy(&out.stderr));
    // --quiet suppresses the progress stream entirely.
    assert!(out.stderr.is_empty(), "stderr not quiet: {}", String::from_utf8_lossy(&out.stderr));
    // The result summary stays machine-parseable on stdout.
    assert!(String::from_utf8_lossy(&out.stdout).contains("test accuracy"));

    let n = graphrare_telemetry::json::validate_jsonl_file(&events)
        .expect("telemetry stream is valid JSONL");
    assert!(n >= 8, "expected >= 8 events (one per DRL step), got {n}");
    let text = std::fs::read_to_string(&events).unwrap();
    let iter_lines = text.lines().filter(|l| l.starts_with("{\"v\":3,\"event\":\"iter\"")).count();
    assert_eq!(iter_lines, 8, "one iter event per --steps iteration");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cli_rejects_missing_input() {
    let out = Command::new(env!("CARGO_BIN_EXE_graphrare"))
        .args(["--input", "/nonexistent/prefix"])
        .output()
        .expect("CLI binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed to read"));
}

#[test]
fn cli_usage_on_bad_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_graphrare"))
        .args(["--frobnicate"])
        .output()
        .expect("CLI binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
