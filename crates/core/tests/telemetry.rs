//! Telemetry integration contract: the registry is strictly
//! observational (bit-identical reports on/off — including with the
//! counting allocator and hierarchical spans active), the JSONL stream
//! carries one schema-stable `iter` event per outer DRL iteration plus
//! v2 `span` events, and the run-scoped aggregate lands in
//! [`RareReport::telemetry`] with per-path self time and exact
//! percentiles.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use graphrare::{run, GraphRareConfig, RareReport};
use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec, Split};
use graphrare_gnn::Backbone;
use graphrare_graph::Graph;
use graphrare_telemetry as telemetry;
use graphrare_telemetry::json::{self, Json};

// This test binary opts into allocation accounting, so the bit-identity
// assertions below also prove the counting allocator perturbs nothing.
graphrare_telemetry::install_counting_allocator!();

/// The registry is process-global; tests that flip it on must not
/// interleave with each other.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

fn heterophilic_fixture() -> (Graph, Split) {
    let spec = DatasetSpec {
        name: "telemetry-test",
        num_nodes: 60,
        num_edges: 140,
        feat_dim: 20,
        num_classes: 3,
        homophily: 0.15,
        degree_exponent: 0.4,
        feature_signal: 0.8,
        feature_density: 0.04,
    };
    let g = generate_spec(&spec, 3);
    let split = stratified_split(g.labels(), g.num_classes(), 0);
    (g, split)
}

/// Every numeric field of two reports must agree exactly; `telemetry`
/// itself is the only field allowed to differ.
fn assert_reports_bit_identical(a: &RareReport, b: &RareReport) {
    assert_eq!(a.backbone, b.backbone);
    assert_eq!(a.test_acc, b.test_acc);
    assert_eq!(a.best_val_acc, b.best_val_acc);
    assert_eq!(a.original_homophily, b.original_homophily);
    assert_eq!(a.optimized_homophily, b.optimized_homophily);
    assert_eq!(a.traces.train_acc, b.traces.train_acc);
    assert_eq!(a.traces.val_acc, b.traces.val_acc);
    assert_eq!(a.traces.homophily, b.traces.homophily);
    assert_eq!(a.traces.episode_rewards, b.traces.episode_rewards);
    assert_eq!(a.traces.ppo_stats.len(), b.traces.ppo_stats.len());
    for (x, y) in a.traces.ppo_stats.iter().zip(&b.traces.ppo_stats) {
        assert_eq!(x.policy_loss, y.policy_loss);
        assert_eq!(x.value_loss, y.value_loss);
        assert_eq!(x.entropy, y.entropy);
        assert_eq!(x.approx_kl, y.approx_kl);
    }
    assert_eq!(a.optimized_graph.edge_vec(), b.optimized_graph.edge_vec());
}

#[test]
fn reports_are_bit_identical_with_telemetry_on_and_off() {
    let _x = exclusive();
    let (g, split) = heterophilic_fixture();
    let cfg = GraphRareConfig::fast().with_seed(11);

    telemetry::set_enabled(false);
    telemetry::clear_sinks();
    let off = run(&g, &split, Backbone::Gcn, &cfg);
    assert!(off.telemetry.is_none(), "disabled run must not carry an aggregate");

    telemetry::reset();
    let (sink, events) = telemetry::VecSink::new();
    telemetry::add_sink(Box::new(sink));
    telemetry::set_enabled(true);
    let on = run(&g, &split, Backbone::Gcn, &cfg);
    telemetry::set_enabled(false);
    telemetry::clear_sinks();

    assert_reports_bit_identical(&off, &on);

    // The enabled run carries a run-scoped aggregate covering the whole
    // of Algorithm 1: one outer iteration per DRL step, one driver.run
    // span, and kernel counters from the GNN's matmul/spmm calls.
    let summary = on.telemetry.as_ref().expect("enabled run records an aggregate");
    assert_eq!(summary.counter("driver.iters"), cfg.steps as u64);
    assert_eq!(summary.span("driver.run").expect("driver.run span").count, 1);
    assert_eq!(summary.span("driver.step").expect("driver.step span").count, cfg.steps as u64);
    assert!(summary.counter("kernel.matmul.calls") > 0, "no matmul kernel events");
    assert!(summary.counter("kernel.spmm.calls") > 0, "no spmm kernel events");
    assert!(summary.counter("train.epochs") > 0, "no trainer epochs recorded");
    assert!(summary.span("entropy.sequence_build").is_some(), "entropy build not spanned");

    // Hierarchical profile: spans aggregate per call path with self
    // time, exact percentiles (count < reservoir capacity here) and —
    // since this binary installs the counting allocator — allocation
    // attribution.
    let step = summary.path("driver.run/driver.step").expect("driver.step path");
    assert_eq!(step.count, cfg.steps as u64);
    assert_eq!(step.sampled, step.count, "percentiles must be exact at this count");
    assert!(step.p50_ns > 0 && step.p50_ns <= step.p90_ns && step.p90_ns <= step.p99_ns);
    assert!(step.self_ns <= step.total_ns);
    let apply = summary.path("driver.run/driver.step/rewire.apply").expect("rewire.apply path");
    assert_eq!(apply.count, cfg.steps as u64);
    assert!(apply.self_ns <= apply.total_ns && apply.p99_ns > 0);
    assert!(
        summary
            .path("driver.run/driver.step/rewire.apply/rewire.operators")
            .is_some_and(|p| p.count == cfg.steps as u64),
        "rewire.operators must nest under rewire.apply"
    );
    // The entropy precompute runs before the driver.run span opens, so
    // its spans are roots; the feature/structural tables nest nowhere.
    let build =
        summary.paths_named("entropy.sequence_build").next().expect("entropy.sequence_build path");
    assert!(build.p50_ns > 0 && build.self_ns > 0);
    assert!(summary.path("entropy.feature_table").is_some(), "precompute spans are roots");
    // Allocation accounting is live in this binary and attributed.
    assert!(graphrare_telemetry::alloc::active(), "counting allocator not installed");
    assert!(step.alloc_count > 0, "driver.step attributed no allocations");
    assert!(step.alloc_bytes > 0);

    // One iter event per outer iteration, with the Algorithm-1 fields.
    let events = events.lock().unwrap();
    let iters: Vec<_> = events.iter().filter(|e| e.kind() == "iter").collect();
    assert_eq!(iters.len(), cfg.steps);
    for e in &iters {
        for key in
            ["step", "reward", "train_acc", "val_acc", "loss", "homophily", "edge_delta", "wall_ns"]
        {
            assert!(e.field(key).is_some(), "iter event missing {key}");
        }
    }
    assert_eq!(events.iter().filter(|e| e.kind() == "run_start").count(), 1);
    assert_eq!(events.iter().filter(|e| e.kind() == "run_end").count(), 1);
    assert_eq!(
        events.iter().filter(|e| e.kind() == "ppo_update").count(),
        cfg.steps / cfg.update_every
    );
}

#[test]
fn jsonl_stream_is_schema_valid_with_one_iter_event_per_step() {
    let _x = exclusive();
    let (g, split) = heterophilic_fixture();
    let cfg = GraphRareConfig::fast().with_seed(5);
    let path: PathBuf = std::env::temp_dir().join("graphrare-telemetry-driver.jsonl");
    let _ = std::fs::remove_file(&path);

    telemetry::reset();
    telemetry::clear_sinks();
    telemetry::add_sink(Box::new(telemetry::JsonlSink::create(&path).unwrap()));
    telemetry::set_enabled(true);
    let report = run(&g, &split, Backbone::Gcn, &cfg);
    telemetry::set_enabled(false);
    telemetry::clear_sinks();

    // Every line is a versioned event object.
    let total = json::validate_jsonl_file(&path).expect("JSONL stream validates");
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<Json> =
        text.lines().map(|l| json::validate_event_line(l).expect("valid event line")).collect();
    assert_eq!(lines.len(), total);

    // Golden schema: the version stamp and event kind lead every line.
    for line in text.lines() {
        assert!(
            line.starts_with("{\"v\":3,\"event\":\""),
            "line does not lead with schema header: {line}"
        );
    }

    let kind = |j: &Json| j.get("event").and_then(Json::as_str).map(str::to_owned).unwrap();
    let iters: Vec<&Json> = lines.iter().filter(|j| kind(j) == "iter").collect();
    assert_eq!(iters.len(), cfg.steps, "one iter event per outer DRL iteration");
    for (i, e) in iters.iter().enumerate() {
        assert_eq!(e.get("step").and_then(Json::as_f64), Some(i as f64));
        for key in ["reward", "train_acc", "val_acc", "loss", "homophily"] {
            assert!(e.get(key).and_then(Json::as_f64).is_some(), "iter missing numeric {key}");
        }
        assert!(e.get("edge_delta").and_then(Json::as_f64).is_some());
        // Cross-check the stream against the in-memory traces: the
        // JSONL fields are copies of the same values, not re-derived.
        assert_eq!(e.get("val_acc").and_then(Json::as_f64), Some(report.traces.val_acc[i]));
        assert_eq!(e.get("homophily").and_then(Json::as_f64), Some(report.traces.homophily[i]));
    }

    // The precompute and run lifecycle events are all present.
    let kinds: Vec<String> = lines.iter().map(kind).collect();
    for expected in ["entropy_table", "entropy_sequences", "run_start", "run_end"] {
        assert!(kinds.iter().any(|k| k == expected), "missing {expected} event");
    }
    // The `driver.run` guard drops after the run_end event (so the
    // aggregate includes it), making its span event the final line.
    assert_eq!(kinds.last().map(String::as_str), Some("span"));
    let last = lines.last().unwrap();
    assert_eq!(last.get("name").and_then(Json::as_str), Some("driver.run"));
    assert_eq!(last.get("path").and_then(Json::as_str), Some("driver.run"));
    assert!(last.get("parent_id").is_none(), "driver.run is a root span");

    // Span events form a complete tree: every driver.step span is a
    // child of the driver.run span, and validate_jsonl_file above
    // already proved no parent_id is orphaned.
    let spans: Vec<&Json> = lines.iter().filter(|j| kind(j) == "span").collect();
    let run_id = last.get("span_id").and_then(Json::as_f64).unwrap();
    let steps: Vec<&&Json> = spans
        .iter()
        .filter(|j| j.get("name").and_then(Json::as_str) == Some("driver.step"))
        .collect();
    assert_eq!(steps.len(), cfg.steps, "one span event per driver.step");
    for s in &steps {
        assert_eq!(s.get("parent_id").and_then(Json::as_f64), Some(run_id));
        assert_eq!(s.get("path").and_then(Json::as_str), Some("driver.run/driver.step"));
        let ns = s.get("ns").and_then(Json::as_f64).unwrap();
        let self_ns = s.get("self_ns").and_then(Json::as_f64).unwrap();
        assert!(self_ns <= ns, "self time exceeds wall time");
        assert!(s.get("start_ns").and_then(Json::as_f64).is_some());
    }

    let _ = std::fs::remove_file(&path);
}
