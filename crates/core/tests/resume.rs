//! End-to-end checkpoint/resume test of the `graphrare` CLI: a run that
//! is killed mid-training and resumed from its last checkpoint must
//! print a result summary byte-identical to an uninterrupted run, and a
//! saved model artifact must reproduce the reported test accuracy.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use graphrare_datasets::{generate_spec, DatasetSpec};
use graphrare_graph::io;

fn fixture_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphrare-resume-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_fixture(dir: &Path) -> PathBuf {
    let g = generate_spec(
        &DatasetSpec {
            name: "resume",
            num_nodes: 50,
            num_edges: 110,
            feat_dim: 16,
            num_classes: 3,
            homophily: 0.15,
            degree_exponent: 0.3,
            feature_signal: 0.8,
            feature_density: 0.05,
        },
        1,
    );
    let input = dir.join("toy");
    io::write_graph(&g, &input).unwrap();
    input
}

fn run_cli(args: &[&str]) -> Output {
    let out =
        Command::new(env!("CARGO_BIN_EXE_graphrare")).args(args).output().expect("CLI binary runs");
    assert!(out.status.success(), "CLI failed: {}", String::from_utf8_lossy(&out.stderr));
    out
}

#[test]
fn killed_run_resumes_bit_identically() {
    let dir = fixture_dir("kill");
    let input = write_fixture(&dir);
    let input = input.to_str().unwrap();
    let ckpts = dir.join("ckpts");
    let ckpts_str = ckpts.to_str().unwrap();
    let common =
        ["--input", input, "--steps", "6", "--seed", "3", "--checkpoint-every", "2", "--quiet"];

    // Reference: uninterrupted run (checkpointing on, like the real one,
    // so both take the identical code path).
    let mut full = common.to_vec();
    full.extend(["--checkpoint-dir", ckpts_str]);
    let reference = run_cli(&full);
    for step in [2, 4, 6] {
        assert!(
            ckpts.join(format!("step-{step:06}.grrs")).exists(),
            "missing checkpoint for step {step}"
        );
    }

    // Simulate a kill between step 4 and the end of the run: everything
    // after the step-4 checkpoint is lost.
    std::fs::remove_file(ckpts.join("step-000006.grrs")).unwrap();

    let mut resumed = common.to_vec();
    resumed.extend(["--checkpoint-dir", ckpts_str, "--resume"]);
    let rerun = run_cli(&resumed);

    assert_eq!(
        String::from_utf8_lossy(&reference.stdout),
        String::from_utf8_lossy(&rerun.stdout),
        "resumed run diverged from the uninterrupted one"
    );
    // The resumed run must have rewritten the lost step-6 checkpoint.
    assert!(ckpts.join("step-000006.grrs").exists());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resume_with_empty_checkpoint_dir_starts_fresh() {
    let dir = fixture_dir("fresh");
    let input = write_fixture(&dir);
    let input = input.to_str().unwrap();
    let ckpts = dir.join("ckpts");
    std::fs::create_dir_all(&ckpts).unwrap();

    let plain = run_cli(&["--input", input, "--steps", "4", "--seed", "3", "--quiet"]);
    let resumed = run_cli(&[
        "--input",
        input,
        "--steps",
        "4",
        "--seed",
        "3",
        "--quiet",
        "--resume",
        "--checkpoint-dir",
        ckpts.to_str().unwrap(),
    ]);
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "checkpointed code path changed the numbers"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn saved_model_reproduces_reported_test_accuracy() {
    let dir = fixture_dir("model");
    let input = write_fixture(&dir);
    let input = input.to_str().unwrap();
    let model = dir.join("model.grrs");
    let model = model.to_str().unwrap();

    let trained = run_cli(&[
        "--input",
        input,
        "--steps",
        "4",
        "--seed",
        "3",
        "--quiet",
        "--save-model",
        model,
    ]);
    let reloaded = run_cli(&["--input", input, "--quiet", "--load-model", model]);

    let acc = |out: &Output| -> String {
        let stdout = String::from_utf8(out.stdout.clone()).unwrap();
        let line = stdout
            .lines()
            .find(|l| l.starts_with("test accuracy"))
            .unwrap_or_else(|| panic!("no test accuracy line in {stdout:?}"))
            .to_string();
        line.rsplit(' ').next().unwrap().to_string()
    };
    assert_eq!(acc(&trained), acc(&reloaded), "saved model changed the test accuracy");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resume_rejects_mismatched_config() {
    let dir = fixture_dir("mismatch");
    let input = write_fixture(&dir);
    let input = input.to_str().unwrap();
    let ckpts = dir.join("ckpts");
    let ckpts_str = ckpts.to_str().unwrap();

    run_cli(&[
        "--input",
        input,
        "--steps",
        "4",
        "--seed",
        "3",
        "--quiet",
        "--checkpoint-every",
        "2",
        "--checkpoint-dir",
        ckpts_str,
    ]);

    // Same checkpoints, different seed: the CLI must refuse, not
    // silently continue a different run.
    let out = Command::new(env!("CARGO_BIN_EXE_graphrare"))
        .args([
            "--input",
            input,
            "--steps",
            "4",
            "--seed",
            "4",
            "--quiet",
            "--resume",
            "--checkpoint-dir",
            ckpts_str,
        ])
        .output()
        .expect("CLI binary runs");
    assert!(!out.status.success(), "config mismatch was not rejected");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot resume"),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(dir);
}
