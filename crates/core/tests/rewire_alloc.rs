//! Steady-state allocation regression: a warmed-up [`RewiredGraph`]
//! must run dense-regime transitions — delta scan, guard (including the
//! localized replay and kept-cache), reconcile and the in-place operator
//! rebuild — with **zero** heap allocations.
//!
//! The counting allocator's counters are process-wide, so this file
//! holds exactly one `#[test]`: the test binary is effectively
//! single-threaded and every allocation observed inside the measured
//! window is attributable to the engine under test. (The wider
//! bit-identity matrix lives in `rewire_equivalence.rs`; this binary
//! only pins the allocator contract.)

graphrare_telemetry::install_counting_allocator!();

use graphrare::rewire::{RewireDelta, RewiredGraph};
use graphrare::topology::{EditMode, TopologyOptimizer};
use graphrare::TopoState;
use graphrare_entropy::{
    CandidatePool, EntropySequences, RelativeEntropyConfig, RelativeEntropyTable, SequenceConfig,
};
use graphrare_gnn::GraphTensors;
use graphrare_graph::{metrics, Graph};
use graphrare_telemetry::alloc;
use graphrare_tensor::Matrix;

/// Deterministic pseudo-random dense-ish graph (ring keeps degrees >= 2),
/// same shape as the equivalence suite's dense regime.
fn dense_optimizer(n: usize) -> TopologyOptimizer {
    let mut edges = Vec::new();
    for v in 0..n {
        edges.push((v, (v + 1) % n));
        edges.push((v, (v * v + 3 * v + 1) % n));
        edges.push((v, (v * 7 + 5) % n));
    }
    let feats = Matrix::from_fn(n, 4, |r, c| ((r * 7 + c * 3 + r * c) % 5) as f32 / 4.0);
    let labels: Vec<usize> = (0..n).map(|v| v % 3).collect();
    let g = Graph::from_edges(n, &edges, feats, labels, 3);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let seqs = EntropySequences::build(
        &g,
        &table,
        &SequenceConfig { pool: CandidatePool::RemoteRing { hops: 3 }, max_additions: 8 },
    );
    TopologyOptimizer::new(g, seqs, EditMode::Both)
}

#[test]
fn warm_dense_steps_do_not_allocate() {
    assert!(alloc::active(), "counting allocator must be installed in this binary");

    let n = 40;
    let topo = dense_optimizer(n);
    let base = topo.base();
    let k_max = topo.k_bounds(6);
    let d_max: Vec<u16> = (0..n).map(|v| base.degree(v) as u16).collect();
    let mut state = TopoState::new(k_max, d_max);

    let mut rw = RewiredGraph::new(&topo);
    // Build all four operators up-front and drop the handles: with a
    // refcount of one, the dense rebuild refills the cached storage in
    // place instead of cloning.
    rw.tensors().gcn_norm();
    rw.tensors().row_norm();
    rw.tensors().two_hop();
    rw.tensors().attention();

    // A three-state cycle. Deletion prefixes stay maxed throughout, so
    // the risky census never empties (the kept-cache is never dropped)
    // and every step takes the resimulation path; state B additionally
    // shrinks one node's prefix so the cycle exercises both kept-cache
    // hits and in-place re-derivations. The k swings flip enough edges
    // per step to stay in the dense operator-rebuild regime.
    type StateEdit = Box<dyn Fn(&mut TopoState)>;
    let cycle: Vec<StateEdit> = vec![
        Box::new(|s: &mut TopoState| {
            for v in 0..40 {
                s.set_k(v, s.k_max(v).min(4));
                s.set_d(v, s.d_max(v));
            }
        }),
        Box::new(|s: &mut TopoState| {
            for v in 0..40 {
                s.set_k(v, 0);
                s.set_d(v, s.d_max(v));
            }
            s.set_d(0, s.d_max(0).saturating_sub(1));
        }),
        Box::new(|s: &mut TopoState| {
            for v in 0..40 {
                s.set_k(v, s.k_max(v).min(2));
                s.set_d(v, s.d_max(v));
            }
        }),
    ];

    let mut delta = RewireDelta::default();
    // Two warm-up cycles grow every scratch buffer, cache entry and
    // operator store to its steady-state capacity.
    for _ in 0..2 {
        for set in &cycle {
            set(&mut state);
            rw.apply_into(&topo, &state, &mut delta).unwrap();
            assert!(delta.resimulated, "trace must keep the risky census populated");
            assert!(
                2 * (delta.added.len() + delta.removed.len()) > n,
                "trace must stay in the dense operator regime"
            );
        }
    }

    // Measured window: one full steady-state cycle.
    let before = alloc::snapshot();
    for set in &cycle {
        set(&mut state);
        rw.apply_into(&topo, &state, &mut delta).unwrap();
    }
    let after = alloc::snapshot();
    assert_eq!(
        after.count - before.count,
        0,
        "steady-state dense apply allocated ({} allocs, {} bytes)",
        after.count - before.count,
        after.bytes - before.bytes
    );

    // And the allocation-free path still lands on the reference output.
    let want = topo.materialize(&state);
    assert_eq!(rw.graph().edge_vec(), want.edge_vec(), "edge sets diverge");
    assert_eq!(
        rw.homophily_ratio().to_bits(),
        metrics::homophily_ratio(&want).to_bits(),
        "homophily diverges"
    );
    let fresh = GraphTensors::new(&want);
    assert_eq!(*rw.tensors().gcn_norm(), *fresh.gcn_norm(), "gcn_norm diverges");
    assert_eq!(*rw.tensors().row_norm(), *fresh.row_norm(), "row_norm diverges");
    assert_eq!(*rw.tensors().two_hop(), *fresh.two_hop(), "two_hop diverges");
    assert_eq!(*rw.tensors().attention(), *fresh.attention(), "attention diverges");
}
