//! Pluggable per-step edit-proposal strategies.
//!
//! GraphRARE's central claim is that the RL-driven topology optimisation
//! beats fixed rewiring heuristics. The [`Rewirer`] trait makes that
//! comparison first-class: every strategy proposes one multi-discrete
//! action vector per outer step (the same `{−1, 0, +1}`-per-counter
//! action space the PPO agent uses, Eq. 10), and the driver applies it
//! through the identical [`TopoState`] → [`RewiredGraph`] pipeline. The
//! incremental rewiring engine never knows who proposed the edit, so the
//! bit-identity contract (incremental apply ≡ `materialize`) holds for
//! every strategy by construction — and is pinned for each of them by the
//! `rewire_equivalence` harness.
//!
//! Strategies:
//!
//! * [`RewirerKind::Ppo`] — the paper's DRL module (PPO or A2C per
//!   `cfg.algo`), unchanged: this module merely owns the agent and its
//!   rollout buffer instead of the driver.
//! * [`RewirerKind::Dhgr`] — DHGR-style similarity rewiring ("Make
//!   Heterophily Graphs Better Fit GNN"): a candidate edge is accepted
//!   when its feature/label similarity clears a threshold calibrated on
//!   the original graph's own edges; dissimilar original edges are
//!   dropped.
//! * [`RewirerKind::Reference`] — reference-graph homophily rewiring
//!   ("It Takes a Graph to Know a Graph"): a feature-kNN reference graph
//!   is built once, candidate edges inside the reference relation are
//!   added, original edges outside it are deleted.
//! * [`RewirerKind::None`] — proposes no edits; the baseline that trains
//!   the backbone on the untouched graph through the same loop.
//!
//! The heuristics are RNG-free and fully deterministic in (graph,
//! config); the PPO strategy is deterministic under the config seed.
//!
//! [`RewiredGraph`]: crate::rewire::RewiredGraph

use graphrare_rl::{
    A2cAgent, A2cConfig, AgentState, GlobalPolicy, PpoAgent, PpoStats, RolloutBuffer, SharedPolicy,
    ValueNet,
};
use graphrare_tensor::optim::AdamSnapshot;
use graphrare_tensor::Matrix;

use graphrare_graph::edge_key;

use crate::config::{GraphRareConfig, PolicyKind, RlAlgo};
use crate::fxmap::FxHashSet;
use crate::state::TopoState;
use crate::topology::TopologyOptimizer;

/// Which rewiring strategy proposes the per-step edits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RewirerKind {
    /// The paper's DRL module (PPO/A2C per `cfg.algo`).
    Ppo,
    /// DHGR-style feature/label-similarity rewiring.
    Dhgr,
    /// Reference-graph (feature-kNN) homophily rewiring.
    Reference,
    /// No edits: the plain-backbone baseline through the same loop.
    None,
}

impl RewirerKind {
    /// Every strategy, in CLI/bench presentation order.
    pub const ALL: [RewirerKind; 4] =
        [RewirerKind::Ppo, RewirerKind::Dhgr, RewirerKind::Reference, RewirerKind::None];

    /// Stable lowercase name (CLI value, bench/telemetry tag).
    pub fn name(&self) -> &'static str {
        match self {
            RewirerKind::Ppo => "ppo",
            RewirerKind::Dhgr => "dhgr",
            RewirerKind::Reference => "reference",
            RewirerKind::None => "none",
        }
    }

    /// Telemetry span name for this strategy's proposal phase. Static per
    /// strategy so span names stay `&'static str` end to end.
    pub fn span_name(&self) -> &'static str {
        match self {
            RewirerKind::Ppo => "rewire.propose.ppo",
            RewirerKind::Dhgr => "rewire.propose.dhgr",
            RewirerKind::Reference => "rewire.propose.reference",
            RewirerKind::None => "rewire.propose.none",
        }
    }

    /// Parses a CLI value produced by [`RewirerKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        RewirerKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Stable wire tag (serve protocol).
    pub fn tag(&self) -> u16 {
        match self {
            RewirerKind::Ppo => 0,
            RewirerKind::Dhgr => 1,
            RewirerKind::Reference => 2,
            RewirerKind::None => 3,
        }
    }

    /// Inverse of [`RewirerKind::tag`].
    pub fn from_tag(tag: u16) -> Option<Self> {
        RewirerKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

/// One per-step edit-proposal strategy.
///
/// The driver's contract per outer step: exactly one [`propose`] call on
/// the pre-transition state `S_t`, whose action vector the driver applies
/// (`S_{t+1} = S_t + A_t`), followed by exactly one [`feedback`] call
/// carrying the realised reward and the post-transition state. RL-backed
/// strategies learn from the feedback; heuristics ignore it.
///
/// [`propose`]: Rewirer::propose
/// [`feedback`]: Rewirer::feedback
pub trait Rewirer {
    /// The strategy's kind (telemetry/bench tag).
    fn kind(&self) -> RewirerKind;

    /// Proposes one multi-discrete action vector over `S_t`: one index
    /// per head in node-interleaved layout (head `2v` adjusts `k_v`,
    /// head `2v+1` adjusts `d_v`; 0 decrements, 1 keeps, 2 increments),
    /// exactly what [`TopoState::apply`] consumes.
    fn propose(&mut self, state: &TopoState) -> Vec<u8>;

    /// Observes the realised reward of the last proposal. `state` is the
    /// post-transition `S_{t+1}` (pre episodic reset). `window_end`
    /// marks the end of an update window; a strategy that runs a policy
    /// update there returns its stats (driving the `ppo_update`
    /// telemetry event and the `ppo_stats` trace), all others return
    /// `None`.
    fn feedback(
        &mut self,
        reward: f32,
        window_end: bool,
        reset_each_episode: bool,
        state: &TopoState,
    ) -> Option<PpoStats>;

    /// Re-anchors the strategy on a refreshed topology optimiser (the
    /// entropy-refresh boundary swaps candidate rankings, so prefix-based
    /// heuristics recompute their targets). The PPO agent persists its
    /// parameters across refreshes, so its override is a no-op.
    fn rebase(&mut self, topo: &TopologyOptimizer);

    /// Learned state for checkpoints. Heuristics are stateless and
    /// export an empty [`AgentState`] (no parameters, fresh Adam, zero
    /// RNG), which round-trips through the checkpoint container
    /// unchanged.
    fn export_agent(&self) -> AgentState;

    /// Restores state captured by [`export_agent`](Rewirer::export_agent).
    fn import_agent(&mut self, state: &AgentState);

    /// In-flight rollout transitions for checkpoints (empty for
    /// heuristics).
    fn export_buffer(&self) -> RolloutBuffer;

    /// Restores the buffer captured by
    /// [`export_buffer`](Rewirer::export_buffer).
    fn import_buffer(&mut self, buffer: &RolloutBuffer);
}

/// Builds the configured strategy over one topology optimiser.
///
/// `train_mask` carries the training-split node indices: heuristics may
/// use training labels (transductive node classification exposes them),
/// but never validation/test labels.
pub fn build_rewirer(
    topo: &TopologyOptimizer,
    cfg: &GraphRareConfig,
    train_mask: &[usize],
) -> Box<dyn Rewirer> {
    match cfg.rewirer {
        RewirerKind::Ppo => Box::new(PpoRewirer::new(topo.base().num_nodes(), cfg)),
        RewirerKind::Dhgr => Box::new(TargetDriven::dhgr(topo, cfg, train_mask)),
        RewirerKind::Reference => Box::new(TargetDriven::reference(topo, cfg)),
        RewirerKind::None => Box::new(TargetDriven::none(topo)),
    }
}

// ---------------------------------------------------------------------------
// PPO / A2C
// ---------------------------------------------------------------------------

enum AgentBox {
    PpoGlobal(PpoAgent<GlobalPolicy>),
    PpoShared(PpoAgent<SharedPolicy>),
    A2cGlobal(A2cAgent<GlobalPolicy>),
    A2cShared(A2cAgent<SharedPolicy>),
}

impl AgentBox {
    fn new(kind: PolicyKind, num_nodes: usize, cfg: &GraphRareConfig) -> Self {
        let state_dim = 2 * num_nodes;
        let a2c = A2cConfig { seed: cfg.ppo.seed, ..Default::default() };
        match (cfg.algo, kind) {
            (RlAlgo::Ppo, PolicyKind::Global { hidden }) => {
                let policy = GlobalPolicy::new(state_dim, hidden, 2 * num_nodes, cfg.ppo.seed);
                let value = ValueNet::new(state_dim, hidden, cfg.ppo.seed.wrapping_add(17));
                AgentBox::PpoGlobal(PpoAgent::new(policy, value, cfg.ppo))
            }
            (RlAlgo::Ppo, PolicyKind::Shared { hidden }) => {
                let policy = SharedPolicy::new(num_nodes, 2, hidden, cfg.ppo.seed);
                let value = ValueNet::new(state_dim, hidden, cfg.ppo.seed.wrapping_add(17));
                AgentBox::PpoShared(PpoAgent::new(policy, value, cfg.ppo))
            }
            (RlAlgo::A2c, PolicyKind::Global { hidden }) => {
                let policy = GlobalPolicy::new(state_dim, hidden, 2 * num_nodes, cfg.ppo.seed);
                let value = ValueNet::new(state_dim, hidden, cfg.ppo.seed.wrapping_add(17));
                AgentBox::A2cGlobal(A2cAgent::new(policy, value, a2c))
            }
            (RlAlgo::A2c, PolicyKind::Shared { hidden }) => {
                let policy = SharedPolicy::new(num_nodes, 2, hidden, cfg.ppo.seed);
                let value = ValueNet::new(state_dim, hidden, cfg.ppo.seed.wrapping_add(17));
                AgentBox::A2cShared(A2cAgent::new(policy, value, a2c))
            }
        }
    }

    fn act(&mut self, state: &[f32]) -> (Vec<u8>, f32, f32) {
        match self {
            AgentBox::PpoGlobal(a) => a.act(state),
            AgentBox::PpoShared(a) => a.act(state),
            AgentBox::A2cGlobal(a) => a.act(state),
            AgentBox::A2cShared(a) => a.act(state),
        }
    }

    fn value_of(&self, state: &[f32]) -> f32 {
        match self {
            AgentBox::PpoGlobal(a) => a.value_of(state),
            AgentBox::PpoShared(a) => a.value_of(state),
            AgentBox::A2cGlobal(a) => a.value_of(state),
            AgentBox::A2cShared(a) => a.value_of(state),
        }
    }

    /// Runs the agent's update; A2C stats are reported through the same
    /// `PpoStats` shape (approx_kl stays 0 — there is no old policy).
    fn update(&mut self, buffer: &RolloutBuffer, last_value: f32) -> PpoStats {
        match self {
            AgentBox::PpoGlobal(a) => a.update(buffer, last_value),
            AgentBox::PpoShared(a) => a.update(buffer, last_value),
            AgentBox::A2cGlobal(a) => {
                let s = a.update(buffer, last_value);
                PpoStats {
                    policy_loss: s.policy_loss,
                    value_loss: s.value_loss,
                    entropy: s.entropy,
                    approx_kl: 0.0,
                }
            }
            AgentBox::A2cShared(a) => {
                let s = a.update(buffer, last_value);
                PpoStats {
                    policy_loss: s.policy_loss,
                    value_loss: s.value_loss,
                    entropy: s.entropy,
                    approx_kl: 0.0,
                }
            }
        }
    }

    fn export_state(&self) -> AgentState {
        match self {
            AgentBox::PpoGlobal(a) => a.export_state(),
            AgentBox::PpoShared(a) => a.export_state(),
            AgentBox::A2cGlobal(a) => a.export_state(),
            AgentBox::A2cShared(a) => a.export_state(),
        }
    }

    fn import_state(&mut self, state: &AgentState) {
        match self {
            AgentBox::PpoGlobal(a) => a.import_state(state),
            AgentBox::PpoShared(a) => a.import_state(state),
            AgentBox::A2cGlobal(a) => a.import_state(state),
            AgentBox::A2cShared(a) => a.import_state(state),
        }
    }
}

/// One in-flight transition between `propose` and `feedback`.
struct Pending {
    features: Vec<f32>,
    actions: Vec<u8>,
    log_prob: f32,
    value: f32,
}

/// The paper's DRL strategy: a PPO (or A2C) agent over the normalised
/// `[k, d]` counters, updated every `update_every` steps from the rollout
/// buffer. Call-for-call identical to the agent the driver used to own,
/// so existing runs and checkpoints stay bit-identical.
struct PpoRewirer {
    agent: AgentBox,
    buffer: RolloutBuffer,
    pending: Option<Pending>,
}

impl PpoRewirer {
    fn new(num_nodes: usize, cfg: &GraphRareConfig) -> Self {
        Self {
            agent: AgentBox::new(cfg.policy, num_nodes, cfg),
            buffer: RolloutBuffer::new(),
            pending: None,
        }
    }
}

impl Rewirer for PpoRewirer {
    fn kind(&self) -> RewirerKind {
        RewirerKind::Ppo
    }

    fn propose(&mut self, state: &TopoState) -> Vec<u8> {
        let features = state.features();
        let (actions, log_prob, value) = self.agent.act(&features);
        self.pending = Some(Pending { features, actions: actions.clone(), log_prob, value });
        actions
    }

    fn feedback(
        &mut self,
        reward: f32,
        window_end: bool,
        reset_each_episode: bool,
        state: &TopoState,
    ) -> Option<PpoStats> {
        let p = self.pending.take().expect("feedback without a matching propose");
        self.buffer.push(
            p.features,
            p.actions,
            p.log_prob,
            p.value,
            reward,
            window_end && reset_each_episode,
        );
        if !window_end {
            return None;
        }
        // Terminal windows bootstrap from 0, continuing ones from the
        // critic's value of the state the next window starts in.
        let last_value =
            if reset_each_episode { 0.0 } else { self.agent.value_of(&state.features()) };
        let stats = self.agent.update(&self.buffer, last_value);
        self.buffer.clear();
        Some(stats)
    }

    fn rebase(&mut self, _topo: &TopologyOptimizer) {
        // The agent's parameters persist across sequence refreshes; only
        // the state it observes jumps (the driver rebuilds `TopoState`).
    }

    fn export_agent(&self) -> AgentState {
        self.agent.export_state()
    }

    fn import_agent(&mut self, state: &AgentState) {
        self.agent.import_state(state);
        self.pending = None;
    }

    fn export_buffer(&self) -> RolloutBuffer {
        self.buffer.clone()
    }

    fn import_buffer(&mut self, buffer: &RolloutBuffer) {
        self.buffer = buffer.clone();
    }
}

// ---------------------------------------------------------------------------
// Heuristics
// ---------------------------------------------------------------------------

/// Acceptance criteria of a heuristic strategy, kept so prefix targets
/// can be recomputed at entropy-refresh boundaries.
enum Criteria {
    /// Accept nothing (the `none` baseline).
    Hold,
    /// DHGR similarity scoring: cosine feature similarity plus a
    /// training-label agreement term, thresholded at `tau` (the median
    /// score over the original graph's edges).
    Dhgr { feats: Matrix, norms: Vec<f32>, known: Vec<Option<usize>>, tau: f32 },
    /// Reference-graph membership: the symmetric feature-kNN relation.
    Reference { relation: FxHashSet<u64> },
}

impl Criteria {
    /// Whether candidate edge `(v, u)` should be added.
    fn accept_add(&self, v: usize, u: usize) -> bool {
        match self {
            Criteria::Hold => false,
            Criteria::Dhgr { .. } => self.dhgr_score(v, u) > self.dhgr_tau(),
            Criteria::Reference { relation } => relation.contains(&edge_key(v, u)),
        }
    }

    /// Whether original edge `(v, u)` should be deleted.
    fn accept_del(&self, v: usize, u: usize) -> bool {
        match self {
            Criteria::Hold => false,
            Criteria::Dhgr { .. } => self.dhgr_score(v, u) < self.dhgr_tau(),
            Criteria::Reference { relation } => !relation.contains(&edge_key(v, u)),
        }
    }

    fn dhgr_tau(&self) -> f32 {
        match self {
            Criteria::Dhgr { tau, .. } => *tau,
            _ => unreachable!("dhgr_tau on a non-DHGR criteria"),
        }
    }

    /// DHGR pair score: cosine feature similarity, nudged by training
    /// labels when both endpoints have one (+0.25 same class, −0.25
    /// different), mirroring DHGR's combined feature/label similarity.
    fn dhgr_score(&self, v: usize, u: usize) -> f32 {
        let Criteria::Dhgr { feats, norms, known, .. } = self else {
            unreachable!("dhgr_score on a non-DHGR criteria");
        };
        let mut score = cosine(feats.row(v), feats.row(u), norms[v], norms[u]);
        if let (Some(a), Some(b)) = (known[v], known[u]) {
            score += if a == b { 0.25 } else { -0.25 };
        }
        score
    }
}

/// A deterministic heuristic strategy: per-node target counters computed
/// once from the graph, approached one increment per step.
///
/// The candidate *order* is fixed by the entropy rankings (the shared
/// action space: `k_v` connects a prefix of `additions(v)`, `d_v`
/// removes a prefix of `deletions(v)`), so a heuristic expresses itself
/// as the longest candidate prefix its acceptance criteria endorse. The
/// proposals are monotone — once every counter reaches its target the
/// strategy proposes all-holds and the graph is converged.
struct TargetDriven {
    kind: RewirerKind,
    cap: usize,
    criteria: Criteria,
    k_target: Vec<u16>,
    d_target: Vec<u16>,
}

impl TargetDriven {
    fn with_criteria(
        kind: RewirerKind,
        topo: &TopologyOptimizer,
        cap: usize,
        criteria: Criteria,
    ) -> Self {
        let (k_target, d_target) = prefix_targets(topo, cap, &criteria);
        Self { kind, cap, criteria, k_target, d_target }
    }

    fn none(topo: &TopologyOptimizer) -> Self {
        let n = topo.base().num_nodes();
        Self {
            kind: RewirerKind::None,
            cap: 0,
            criteria: Criteria::Hold,
            k_target: vec![0; n],
            d_target: vec![0; n],
        }
    }

    fn dhgr(topo: &TopologyOptimizer, cfg: &GraphRareConfig, train_mask: &[usize]) -> Self {
        let base = topo.base();
        let feats = base.features().clone();
        let norms: Vec<f32> = (0..base.num_nodes())
            .map(|v| feats.row(v).iter().map(|x| x * x).sum::<f32>().sqrt())
            .collect();
        let mut known = vec![None; base.num_nodes()];
        for &v in train_mask {
            known[v] = Some(base.labels()[v]);
        }
        // Calibrate the acceptance threshold on the graph's own edges:
        // additions must look more homophilous than the median existing
        // edge, deletions less. Frozen at G_0 so refresh boundaries keep
        // comparing against the same yardstick.
        let mut criteria = Criteria::Dhgr { feats, norms, known, tau: 0.0 };
        let mut scores: Vec<f32> =
            base.edge_vec().iter().map(|&(u, v)| criteria.dhgr_score(u, v)).collect();
        scores.sort_unstable_by(f32::total_cmp);
        let tau = if scores.is_empty() { 0.0 } else { scores[scores.len() / 2] };
        if let Criteria::Dhgr { tau: t, .. } = &mut criteria {
            *t = tau;
        }
        Self::with_criteria(RewirerKind::Dhgr, topo, cfg.k_cap, criteria)
    }

    fn reference(topo: &TopologyOptimizer, cfg: &GraphRareConfig) -> Self {
        let relation = knn_relation(topo.base());
        Self::with_criteria(
            RewirerKind::Reference,
            topo,
            cfg.k_cap,
            Criteria::Reference { relation },
        )
    }
}

impl Rewirer for TargetDriven {
    fn kind(&self) -> RewirerKind {
        self.kind
    }

    fn propose(&mut self, state: &TopoState) -> Vec<u8> {
        let n = state.num_nodes();
        let mut actions = vec![1u8; 2 * n];
        for v in 0..n {
            if state.k(v) < (self.k_target[v] as usize).min(state.k_max(v)) {
                actions[2 * v] = 2;
            }
            if state.d(v) < (self.d_target[v] as usize).min(state.d_max(v)) {
                actions[2 * v + 1] = 2;
            }
        }
        actions
    }

    fn feedback(
        &mut self,
        _reward: f32,
        _window_end: bool,
        _reset_each_episode: bool,
        _state: &TopoState,
    ) -> Option<PpoStats> {
        None
    }

    fn rebase(&mut self, topo: &TopologyOptimizer) {
        let (k_target, d_target) = prefix_targets(topo, self.cap, &self.criteria);
        self.k_target = k_target;
        self.d_target = d_target;
    }

    fn export_agent(&self) -> AgentState {
        AgentState {
            params: Vec::new(),
            adam: AdamSnapshot { t: 0, moments: Vec::new() },
            rng: [0; 4],
        }
    }

    fn import_agent(&mut self, _state: &AgentState) {
        // Stateless: the driver's shape validation already guaranteed the
        // snapshot carries the empty agent state exported above.
    }

    fn export_buffer(&self) -> RolloutBuffer {
        RolloutBuffer::new()
    }

    fn import_buffer(&mut self, _buffer: &RolloutBuffer) {}
}

/// Longest accepted candidate prefix per node, within the same bounds the
/// driver builds its [`TopoState`] with.
fn prefix_targets(
    topo: &TopologyOptimizer,
    cap: usize,
    criteria: &Criteria,
) -> (Vec<u16>, Vec<u16>) {
    let n = topo.base().num_nodes();
    let k_bounds = topo.k_bounds(cap);
    let d_bounds = topo.d_bounds(cap);
    let seqs = topo.sequences();
    let mut k_target = vec![0u16; n];
    let mut d_target = vec![0u16; n];
    for v in 0..n {
        for &(u, _) in seqs.additions(v).iter().take(k_bounds[v] as usize) {
            if !criteria.accept_add(v, u as usize) {
                break;
            }
            k_target[v] += 1;
        }
        for &(u, _) in seqs.deletions(v).iter().take(d_bounds[v] as usize) {
            if !criteria.accept_del(v, u as usize) {
                break;
            }
            d_target[v] += 1;
        }
    }
    (k_target, d_target)
}

fn cosine(a: &[f32], b: &[f32], norm_a: f32, norm_b: f32) -> f32 {
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    dot / (norm_a * norm_b)
}

/// The symmetric feature-kNN reference relation: for every node, its
/// top-`K` most cosine-similar other nodes (ties broken by node index, so
/// the relation is fully deterministic). `K` tracks the graph's average
/// degree, clamped to a small band.
fn knn_relation(base: &graphrare_graph::Graph) -> FxHashSet<u64> {
    let n = base.num_nodes();
    let k = if n == 0 { 2 } else { (2 * base.num_edges() / n.max(1)).clamp(2, 8) };
    let feats = base.features();
    let norms: Vec<f32> =
        (0..n).map(|v| feats.row(v).iter().map(|x| x * x).sum::<f32>().sqrt()).collect();
    let mut relation = FxHashSet::default();
    let mut sims: Vec<(f32, usize)> = Vec::with_capacity(n.saturating_sub(1));
    for v in 0..n {
        sims.clear();
        for u in 0..n {
            if u != v {
                sims.push((cosine(feats.row(v), feats.row(u), norms[v], norms[u]), u));
            }
        }
        // Highest similarity first; equal similarities prefer the lower
        // node index so the relation never depends on iteration order.
        sims.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, u) in sims.iter().take(k) {
            relation.insert(edge_key(v, u));
        }
    }
    relation
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};
    use graphrare_entropy::{EntropySequences, RelativeEntropyTable};
    use graphrare_graph::Graph;

    fn fixture() -> (Graph, Vec<usize>, GraphRareConfig) {
        let spec = DatasetSpec {
            name: "rewirer-test",
            num_nodes: 40,
            num_edges: 90,
            feat_dim: 12,
            num_classes: 3,
            homophily: 0.2,
            degree_exponent: 0.4,
            feature_signal: 0.8,
            feature_density: 0.1,
        };
        let g = generate_spec(&spec, 7);
        let split = stratified_split(g.labels(), g.num_classes(), 0);
        (g, split.train, GraphRareConfig::fast().with_seed(5))
    }

    fn optimizer(g: &Graph, cfg: &GraphRareConfig) -> TopologyOptimizer {
        let table = RelativeEntropyTable::new(g, &cfg.entropy);
        let seqs = EntropySequences::build(g, &table, &cfg.sequences);
        TopologyOptimizer::new(g.clone(), seqs, cfg.edit_mode)
    }

    fn drive(
        rw: &mut dyn Rewirer,
        topo: &TopologyOptimizer,
        cfg: &GraphRareConfig,
        steps: usize,
    ) -> Vec<Vec<u8>> {
        let mut state = TopoState::new(topo.k_bounds(cfg.k_cap), topo.d_bounds(cfg.k_cap));
        let mut trace = Vec::new();
        for t in 0..steps {
            let actions = rw.propose(&state);
            assert_eq!(actions.len(), 2 * state.num_nodes());
            state.apply(&actions);
            let window_end = (t + 1) % cfg.update_every == 0;
            rw.feedback(0.01, window_end, false, &state);
            trace.push(actions);
        }
        trace
    }

    #[test]
    fn kind_name_tag_roundtrip() {
        for kind in RewirerKind::ALL {
            assert_eq!(RewirerKind::parse(kind.name()), Some(kind));
            assert_eq!(RewirerKind::from_tag(kind.tag()), Some(kind));
            assert!(kind.span_name().starts_with("rewire.propose."));
        }
        assert_eq!(RewirerKind::parse("nope"), None);
        assert_eq!(RewirerKind::from_tag(99), None);
    }

    #[test]
    fn every_strategy_is_deterministic_under_seed() {
        let (g, train, cfg) = fixture();
        let topo = optimizer(&g, &cfg);
        for kind in RewirerKind::ALL {
            let mut c = cfg;
            c.rewirer = kind;
            let a = drive(build_rewirer(&topo, &c, &train).as_mut(), &topo, &c, 8);
            let b = drive(build_rewirer(&topo, &c, &train).as_mut(), &topo, &c, 8);
            assert_eq!(a, b, "strategy {} not deterministic", kind.name());
        }
    }

    #[test]
    fn none_strategy_only_holds() {
        let (g, train, mut cfg) = fixture();
        cfg.rewirer = RewirerKind::None;
        let topo = optimizer(&g, &cfg);
        let trace = drive(build_rewirer(&topo, &cfg, &train).as_mut(), &topo, &cfg, 4);
        assert!(trace.iter().all(|step| step.iter().all(|&a| a == 1)));
    }

    #[test]
    fn heuristic_actions_stay_within_bounds_and_converge() {
        let (g, train, cfg) = fixture();
        let topo = optimizer(&g, &cfg);
        for kind in [RewirerKind::Dhgr, RewirerKind::Reference] {
            let mut c = cfg;
            c.rewirer = kind;
            let mut rw = build_rewirer(&topo, &c, &train);
            let mut state = TopoState::new(topo.k_bounds(c.k_cap), topo.d_bounds(c.k_cap));
            // Far more steps than any target: the strategy must settle
            // into all-holds instead of oscillating or overshooting.
            let mut last = Vec::new();
            for _ in 0..64 {
                last = rw.propose(&state);
                state.apply(&last);
                rw.feedback(0.0, false, false, &state);
            }
            assert!(
                last.iter().all(|&a| a == 1),
                "strategy {} still editing after 64 steps",
                kind.name()
            );
            for v in 0..state.num_nodes() {
                assert!(state.k(v) <= state.k_max(v));
                assert!(state.d(v) <= state.d_max(v));
            }
        }
    }

    #[test]
    fn dhgr_proposes_some_edit_on_heterophilic_graph() {
        let (g, train, mut cfg) = fixture();
        cfg.rewirer = RewirerKind::Dhgr;
        let topo = optimizer(&g, &cfg);
        let trace = drive(build_rewirer(&topo, &cfg, &train).as_mut(), &topo, &cfg, 6);
        let edits: usize = trace.iter().map(|s| s.iter().filter(|&&a| a != 1).count()).sum();
        assert!(edits > 0, "DHGR proposed no edits on a heterophilic graph");
    }

    #[test]
    fn heuristics_export_empty_restorable_state() {
        let (g, train, mut cfg) = fixture();
        cfg.rewirer = RewirerKind::Reference;
        let topo = optimizer(&g, &cfg);
        let mut rw = build_rewirer(&topo, &cfg, &train);
        let agent = rw.export_agent();
        assert!(agent.params.is_empty());
        assert!(agent.adam.moments.is_empty());
        assert_eq!(agent.rng, [0; 4]);
        assert_eq!(rw.export_buffer().len(), 0);
        rw.import_agent(&agent);
        rw.import_buffer(&RolloutBuffer::new());
    }

    #[test]
    fn ppo_rewirer_updates_on_window_end_only() {
        let (g, train, cfg) = fixture();
        let topo = optimizer(&g, &cfg);
        let mut rw = build_rewirer(&topo, &cfg, &train);
        assert_eq!(rw.kind(), RewirerKind::Ppo);
        let mut state = TopoState::new(topo.k_bounds(cfg.k_cap), topo.d_bounds(cfg.k_cap));
        for t in 0..cfg.update_every {
            let actions = rw.propose(&state);
            state.apply(&actions);
            let window_end = t + 1 == cfg.update_every;
            let stats = rw.feedback(0.1, window_end, false, &state);
            assert_eq!(stats.is_some(), window_end);
        }
        assert_eq!(rw.export_buffer().len(), 0, "buffer must clear after an update");
    }

    #[test]
    fn rebase_recomputes_targets_against_new_optimizer() {
        let (g, train, mut cfg) = fixture();
        cfg.rewirer = RewirerKind::Reference;
        let topo = optimizer(&g, &cfg);
        let mut rw = build_rewirer(&topo, &cfg, &train);
        // Drive to convergence, then rebase on the same optimiser: the
        // converged state must still propose all-holds (targets are a
        // pure function of the optimiser).
        let mut state = TopoState::new(topo.k_bounds(cfg.k_cap), topo.d_bounds(cfg.k_cap));
        for _ in 0..64 {
            let actions = rw.propose(&state);
            state.apply(&actions);
            rw.feedback(0.0, false, false, &state);
        }
        rw.rebase(&topo);
        let after = rw.propose(&state);
        assert!(after.iter().all(|&a| a == 1));
    }
}
