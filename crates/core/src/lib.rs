//! # graphrare
//!
//! The GraphRARE framework (Peng et al., ICDE 2024): reinforcement-learning
//! enhanced graph topology optimisation with node relative entropy.
//!
//! GraphRARE wraps any message-passing GNN and improves it on heterophilic
//! graphs by (1) ranking node pairs with a relative entropy combining
//! feature and structural similarity, and (2) letting a PPO agent pick
//! per-node counts of edges to add (`k_v`) and delete (`d_v`), trained
//! jointly with the GNN whose training-set accuracy/loss improvements are
//! the reward (Algorithm 1).
//!
//! * [`state`] — the multi-discrete MDP state `S = [k, d]`.
//! * [`topology`] — the topology optimisation module (Fig. 4).
//! * [`rewire`] — incremental rewiring: the persistent `G_t` the driver
//!   updates in `O(changed)` per step instead of rebuilding.
//! * [`rewirer`] — pluggable edit-proposal strategies: the paper's DRL
//!   policy plus deterministic heuristic baselines, all behind one
//!   [`Rewirer`] trait and one shared apply pipeline.
//! * [`reward`] — Eq. 11 and the AUC-reward ablation.
//! * [`config`] — all knobs of a run.
//! * [`driver`] — Algorithm 1 end-to-end ([`run`]) and stepwise
//!   ([`RareDriver`], for checkpoint/resume).
//! * [`persist`] — checkpoint and model-artifact files (`graphrare-store`
//!   containers); a killed run resumes bit-identically.
//! * [`variants`] — DRL-free ablations (fixed/random `k`, `d`).
//!
//! ```no_run
//! use graphrare::{run, GraphRareConfig};
//! use graphrare_datasets::{generate_mini, stratified_split, Dataset};
//! use graphrare_gnn::Backbone;
//!
//! let g = generate_mini(Dataset::Texas, 42);
//! let split = stratified_split(g.labels(), g.num_classes(), 0);
//! let report = run(&g, &split, Backbone::Gcn, &GraphRareConfig::fast());
//! println!("GCN-RARE test accuracy: {:.3}", report.test_acc);
//! println!(
//!     "homophily {:.2} -> {:.2}",
//!     report.original_homophily, report.optimized_homophily
//! );
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod fxmap;
pub mod persist;
pub mod reward;
pub mod rewire;
pub mod rewirer;
pub mod state;
pub mod topology;
pub mod variants;

pub use config::{GraphRareConfig, PolicyKind, RlAlgo, SequenceMode};
pub use driver::{run, run_with_sequences, DriverSnapshot, RareDriver, RareReport, RunTraces};
pub use persist::{
    load_model, load_snapshot, resume_driver, save_checkpoint, save_model, ModelArtifact,
};
pub use reward::{PerfSnapshot, RewardKind};
pub use rewire::{RewireDelta, RewiredGraph};
pub use rewirer::{build_rewirer, Rewirer, RewirerKind};
pub use state::TopoState;
pub use topology::{EditMode, TopologyOptimizer};
pub use variants::{run_fixed_kd, run_plain, run_random_kd, VariantReport};
