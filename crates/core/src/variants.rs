//! Ablation variants of GraphRARE (Table V and Fig. 5).
//!
//! These strip out the DRL module: `k` and `d` are set to a fixed value
//! for every node (Fig. 5's grid) or drawn uniformly per node (the
//! "GCN-RE[·]" rows of Table V). The rest of the pipeline — entropy
//! sequences, topology materialisation, GNN training with early stopping
//! — is identical to the full framework.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graphrare_datasets::Split;
use graphrare_entropy::{EntropySequences, RelativeEntropyTable};
use graphrare_gnn::{build_model, fit, Backbone, FitReport, GraphTensors};
use graphrare_graph::{metrics, Graph};

use crate::config::{GraphRareConfig, SequenceMode};
use crate::rewire::RewiredGraph;
use crate::state::TopoState;
use crate::topology::TopologyOptimizer;

/// Result of a DRL-free ablation run.
#[derive(Clone, Debug)]
pub struct VariantReport {
    /// Test accuracy at the best-validation checkpoint.
    pub test_acc: f64,
    /// Best validation accuracy.
    pub best_val_acc: f64,
    /// Homophily of the rewired graph actually trained on.
    pub rewired_homophily: f64,
    /// Underlying fit report (curves etc.).
    pub fit: FitReport,
}

fn build_optimizer(graph: &Graph, cfg: &GraphRareConfig) -> TopologyOptimizer {
    let table = RelativeEntropyTable::new(graph, &cfg.entropy);
    let seqs = EntropySequences::build(graph, &table, &cfg.sequences);
    let seqs = match cfg.sequence_mode {
        SequenceMode::Entropy => seqs,
        SequenceMode::Shuffled { seed } => seqs.shuffled(seed),
    };
    TopologyOptimizer::new(graph.clone(), seqs, cfg.edit_mode)
}

fn train_on_state(
    topo: &TopologyOptimizer,
    state: &TopoState,
    split: &Split,
    backbone: Backbone,
    cfg: &GraphRareConfig,
) -> VariantReport {
    // Ablations ride the same incremental engine as the full framework:
    // one `apply` from the base graph is `materialize` minus the
    // clone-and-replay (the bit-identity is pinned by
    // `ablation_path_matches_materialize` below and the equivalence
    // suite).
    let mut rw = RewiredGraph::new(topo);
    rw.apply(topo, state).expect("ablation state was built against this optimizer");
    let g = rw.graph();
    let labels = g.labels().to_vec();
    let model = build_model(backbone, g.feat_dim(), g.num_classes(), &cfg.model);
    let fit_report = fit(model.as_ref(), rw.tensors(), &labels, split, &cfg.train);
    VariantReport {
        test_acc: fit_report.test_acc,
        best_val_acc: fit_report.best_val_acc,
        rewired_homophily: rw.homophily_ratio(),
        fit: fit_report,
    }
}

/// Fixed `k`/`d` for every node (Fig. 5 heatmap cells): the topology is
/// rewired once with `k_v = k`, `d_v = d` (clamped per node) and the
/// backbone is trained on it.
pub fn run_fixed_kd(
    graph: &Graph,
    split: &Split,
    backbone: Backbone,
    k: usize,
    d: usize,
    cfg: &GraphRareConfig,
) -> VariantReport {
    let topo = build_optimizer(graph, cfg);
    let mut state =
        TopoState::new(topo.k_bounds(cfg.k_cap.max(k)), topo.d_bounds(cfg.k_cap.max(d)));
    for v in 0..graph.num_nodes() {
        state.set_k(v, k);
        state.set_d(v, d);
    }
    train_on_state(&topo, &state, split, backbone, cfg)
}

/// Random per-node `k`/`d` drawn uniformly from `0..=max_kd` (Table V's
/// "GCN-RE[0‥max]" rows).
pub fn run_random_kd(
    graph: &Graph,
    split: &Split,
    backbone: Backbone,
    max_kd: usize,
    seed: u64,
    cfg: &GraphRareConfig,
) -> VariantReport {
    let topo = build_optimizer(graph, cfg);
    let mut state =
        TopoState::new(topo.k_bounds(cfg.k_cap.max(max_kd)), topo.d_bounds(cfg.k_cap.max(max_kd)));
    let mut rng = StdRng::seed_from_u64(seed);
    for v in 0..graph.num_nodes() {
        state.set_k(v, rng.gen_range(0..=max_kd));
        state.set_d(v, rng.gen_range(0..=max_kd));
    }
    train_on_state(&topo, &state, split, backbone, cfg)
}

/// The plain backbone with no rewiring at all (the `k = d = 0` reference).
pub fn run_plain(
    graph: &Graph,
    split: &Split,
    backbone: Backbone,
    cfg: &GraphRareConfig,
) -> VariantReport {
    let gt = GraphTensors::new(graph);
    let labels = graph.labels().to_vec();
    let model = build_model(backbone, graph.feat_dim(), graph.num_classes(), &cfg.model);
    let fit_report = fit(model.as_ref(), &gt, &labels, split, &cfg.train);
    VariantReport {
        test_acc: fit_report.test_acc,
        best_val_acc: fit_report.best_val_acc,
        rewired_homophily: metrics::homophily_ratio(graph),
        fit: fit_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};

    fn fixture() -> (Graph, Split) {
        let spec = DatasetSpec {
            name: "variant-test",
            num_nodes: 50,
            num_edges: 110,
            feat_dim: 16,
            num_classes: 2,
            homophily: 0.2,
            degree_exponent: 0.4,
            feature_signal: 0.8,
            feature_density: 0.05,
        };
        let g = generate_spec(&spec, 5);
        let split = stratified_split(g.labels(), g.num_classes(), 0);
        (g, split)
    }

    fn fast_cfg() -> GraphRareConfig {
        let mut cfg = GraphRareConfig::fast().with_seed(1);
        cfg.train.epochs = 40;
        cfg
    }

    #[test]
    fn fixed_kd_zero_equals_plain_topology() {
        let (g, split) = fixture();
        let cfg = fast_cfg();
        let fixed = run_fixed_kd(&g, &split, Backbone::Gcn, 0, 0, &cfg);
        assert!((fixed.rewired_homophily - metrics::homophily_ratio(&g)).abs() < 1e-12);
    }

    #[test]
    fn fixed_k_adds_edges_and_raises_homophily() {
        let (g, split) = fixture();
        let cfg = fast_cfg();
        let rewired = run_fixed_kd(&g, &split, Backbone::Gcn, 3, 0, &cfg);
        // Entropy-ranked additions prefer same-class pairs.
        assert!(
            rewired.rewired_homophily > metrics::homophily_ratio(&g),
            "homophily {} not above original {}",
            rewired.rewired_homophily,
            metrics::homophily_ratio(&g)
        );
    }

    #[test]
    fn ablation_path_matches_materialize() {
        // The incremental path the variants now train on must be
        // bit-identical to the old clone-and-replay `materialize` path:
        // same edges, same homophily bits, same gcn operator bits.
        let (g, _split) = fixture();
        let cfg = fast_cfg();
        let topo = build_optimizer(&g, &cfg);
        let mut state = TopoState::new(topo.k_bounds(5), topo.d_bounds(5));
        let mut rng = StdRng::seed_from_u64(3);
        for v in 0..g.num_nodes() {
            state.set_k(v, rng.gen_range(0..=3));
            state.set_d(v, rng.gen_range(0..=3));
        }
        let mut rw = RewiredGraph::new(&topo);
        rw.apply(&topo, &state).unwrap();
        let old = topo.materialize(&state);
        assert_eq!(rw.graph().edge_vec(), old.edge_vec());
        assert_eq!(rw.homophily_ratio().to_bits(), metrics::homophily_ratio(&old).to_bits());
        let fresh = GraphTensors::new(&old);
        assert_eq!(*rw.tensors().gcn_norm(), *fresh.gcn_norm());
    }

    #[test]
    fn random_kd_is_seed_deterministic() {
        let (g, split) = fixture();
        let cfg = fast_cfg();
        let a = run_random_kd(&g, &split, Backbone::Gcn, 5, 9, &cfg);
        let b = run_random_kd(&g, &split, Backbone::Gcn, 5, 9, &cfg);
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.rewired_homophily, b.rewired_homophily);
    }

    #[test]
    fn plain_run_reports_original_homophily() {
        let (g, split) = fixture();
        let cfg = fast_cfg();
        let plain = run_plain(&g, &split, Backbone::Mlp, &cfg);
        assert_eq!(plain.rewired_homophily, metrics::homophily_ratio(&g));
        assert!((0.0..=1.0).contains(&plain.test_acc));
    }
}
