//! `graphrare` — command-line interface to the framework.
//!
//! Runs GraphRARE on a user-supplied attributed graph and writes back the
//! optimised topology plus a metrics summary. Input is the plain-text
//! bundle format of [`graphrare_graph::io`]: `<prefix>.edges`,
//! `<prefix>.features`, `<prefix>.labels`.
//!
//! ```text
//! graphrare --input data/mygraph --output out/mygraph-optimized \
//!           [--backbone gcn|sage|gat|h2gcn] [--lambda 1.0] [--steps 160]
//!           [--seed 42] [--split-seed 0] [--k-cap 10] [--algo ppo|a2c]
//!           [--rewirer ppo|dhgr|reference|none]
//!           [--entropy-refresh-every N]
//!           [--threads N] [--quiet] [--telemetry] [--telemetry-out PATH]
//!           [--checkpoint-every N --checkpoint-dir DIR] [--resume]
//!           [--save-model PATH | --load-model PATH] [--run-id N]
//! ```
//!
//! `--rewirer` selects the strategy that proposes per-step topology
//! edits: `ppo` (the paper's DRL module, default), `dhgr`
//! (feature/label-similarity rewiring), `reference` (feature-kNN
//! reference-graph rewiring) or `none` (train the backbone on the
//! untouched graph through the same loop). All strategies share the
//! incremental apply pipeline, so runs stay bit-reproducible.
//!
//! `--entropy-refresh-every N` re-ranks the candidate sequences against
//! the current rewired graph every `N` DRL steps via the incremental
//! entropy engine (default 0 = the paper's frozen sequences). The mode
//! is incompatible with checkpointing, which snapshots neither the
//! engine nor the re-anchored optimiser.
//!
//! `--threads 0` (the default) resolves the worker count from
//! `GRAPHRARE_THREADS`, falling back to the machine's available
//! parallelism; `--threads 1` forces serial execution. Results are
//! bit-identical either way.
//!
//! Checkpointing: `--checkpoint-every N` writes a `step-NNNNNN.grrs`
//! container into `--checkpoint-dir` after every `N` DRL steps (atomic
//! temp-then-rename writes — a kill mid-write never corrupts an earlier
//! checkpoint). `--resume` picks up the highest-step checkpoint in the
//! directory and continues; a resumed run produces output bit-identical
//! to an uninterrupted one. `--save-model` persists the trained model
//! (best-validation parameters + optimised topology) as one artifact
//! file; `--load-model` skips training and re-evaluates such an
//! artifact on the input graph's split.
//!
//! Observability: progress lines go to **stderr** (suppressed by
//! `--quiet`); the machine-parseable result summary goes to stdout.
//! `--telemetry` enables the registry with the human-readable stderr
//! sink; `--telemetry-out PATH` streams structured JSONL events to
//! `PATH`. `GRAPHRARE_TELEMETRY` configures the same switches from the
//! environment. `--run-id N` tags every emitted event with the given
//! run id (the schema-v3 field the serving daemon uses to multiplex
//! streams). Telemetry is observational only — enabling it never
//! changes a numeric result.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use graphrare::{persist, GraphRareConfig, RareDriver, RareReport, RewirerKind, RlAlgo};
use graphrare_datasets::{stratified_split, Split};
use graphrare_gnn::{build_model, evaluate, Backbone, GraphTensors, Trainer};
use graphrare_graph::{io, metrics, Graph};
use graphrare_store::write_atomic;
use graphrare_telemetry::{self as telemetry, progress};

// Opt into allocation accounting: span paths in `--telemetry` output
// carry alloc count/bytes/peak attribution.
graphrare_telemetry::install_counting_allocator!();

struct Args {
    input: PathBuf,
    output: Option<PathBuf>,
    backbone: Backbone,
    lambda: f64,
    steps: usize,
    seed: u64,
    split_seed: u64,
    k_cap: usize,
    algo: RlAlgo,
    rewirer: RewirerKind,
    entropy_refresh_every: usize,
    threads: usize,
    quiet: bool,
    telemetry: bool,
    telemetry_out: Option<PathBuf>,
    checkpoint_every: usize,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    save_model: Option<PathBuf>,
    load_model: Option<PathBuf>,
    run_id: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: graphrare --input <prefix> [--output <prefix>] \
         [--backbone gcn|sage|gat|h2gcn] [--lambda F] [--steps N] \
         [--seed N] [--split-seed N] [--k-cap N] [--algo ppo|a2c] \
         [--rewirer ppo|dhgr|reference|none] [--entropy-refresh-every N] \
         [--threads N] [--quiet] [--telemetry] [--telemetry-out PATH] \
         [--checkpoint-every N --checkpoint-dir DIR] [--resume] \
         [--save-model PATH | --load-model PATH] [--run-id N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        input: PathBuf::new(),
        output: None,
        backbone: Backbone::Gcn,
        lambda: 1.0,
        steps: 160,
        seed: 42,
        split_seed: 0,
        k_cap: 10,
        algo: RlAlgo::Ppo,
        rewirer: RewirerKind::Ppo,
        entropy_refresh_every: 0,
        threads: 0,
        quiet: false,
        telemetry: false,
        telemetry_out: None,
        checkpoint_every: 0,
        checkpoint_dir: None,
        resume: false,
        save_model: None,
        load_model: None,
        run_id: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut have_input = false;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--input" => {
                args.input = PathBuf::from(value(&mut i));
                have_input = true;
            }
            "--output" => args.output = Some(PathBuf::from(value(&mut i))),
            "--backbone" => {
                args.backbone = match value(&mut i).to_lowercase().as_str() {
                    "gcn" => Backbone::Gcn,
                    "sage" | "graphsage" => Backbone::Sage,
                    "gat" => Backbone::Gat,
                    "h2gcn" => Backbone::H2gcn,
                    other => {
                        eprintln!("unknown backbone {other}");
                        usage()
                    }
                }
            }
            "--lambda" => args.lambda = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--steps" => args.steps = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--split-seed" => args.split_seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--k-cap" => args.k_cap = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--entropy-refresh-every" => {
                args.entropy_refresh_every = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--threads" => args.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--quiet" => args.quiet = true,
            "--telemetry" => args.telemetry = true,
            "--telemetry-out" => args.telemetry_out = Some(PathBuf::from(value(&mut i))),
            "--checkpoint-every" => {
                args.checkpoint_every = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(PathBuf::from(value(&mut i))),
            "--resume" => args.resume = true,
            "--save-model" => args.save_model = Some(PathBuf::from(value(&mut i))),
            "--load-model" => args.load_model = Some(PathBuf::from(value(&mut i))),
            "--run-id" => match value(&mut i).parse() {
                Ok(id) if id > 0 => args.run_id = Some(id),
                _ => {
                    eprintln!("--run-id must be a positive integer");
                    usage()
                }
            },
            "--algo" => {
                args.algo = match value(&mut i).to_lowercase().as_str() {
                    "ppo" => RlAlgo::Ppo,
                    "a2c" => RlAlgo::A2c,
                    other => {
                        eprintln!("unknown algorithm {other}");
                        usage()
                    }
                }
            }
            "--rewirer" => {
                let v = value(&mut i).to_lowercase();
                args.rewirer = match RewirerKind::parse(&v) {
                    Some(kind) => kind,
                    None => {
                        eprintln!("unknown rewirer {v}");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
        i += 1;
    }
    if !have_input {
        usage();
    }
    if (args.checkpoint_every > 0 || args.resume) && args.checkpoint_dir.is_none() {
        eprintln!("--checkpoint-every and --resume require --checkpoint-dir");
        usage();
    }
    if args.entropy_refresh_every > 0 && (args.checkpoint_every > 0 || args.resume) {
        eprintln!(
            "--entropy-refresh-every is incompatible with checkpointing (the incremental \
             entropy engine's state is not captured by snapshots)"
        );
        usage();
    }
    if args.load_model.is_some() && args.save_model.is_some() {
        eprintln!("--load-model and --save-model are mutually exclusive");
        usage();
    }
    args
}

/// Checkpoint file name for one step count.
fn checkpoint_name(step: usize) -> String {
    format!("step-{step:06}.grrs")
}

/// Finds the highest-step `step-NNNNNN.grrs` in `dir`, if any.
fn latest_checkpoint(dir: &Path) -> Option<(usize, PathBuf)> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut best: Option<(usize, PathBuf)> = None;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let step: usize = match name.strip_prefix("step-").and_then(|s| s.strip_suffix(".grrs")) {
            Some(digits) => match digits.parse() {
                Ok(s) => s,
                Err(_) => continue,
            },
            None => continue,
        };
        match best {
            Some((b, _)) if step <= b => {}
            _ => best = Some((step, entry.path())),
        }
    }
    best
}

/// Evaluates a saved model artifact on the input graph without training.
fn eval_saved_model(path: &Path, graph: &Graph, split: &Split) -> Result<(), String> {
    let artifact = persist::load_model(path).map_err(|e| e.to_string())?;
    let backbone = match artifact.backbone.to_lowercase().as_str() {
        "mlp" => Backbone::Mlp,
        "gcn" => Backbone::Gcn,
        "graphsage" | "sage" => Backbone::Sage,
        "gat" => Backbone::Gat,
        "h2gcn" => Backbone::H2gcn,
        other => return Err(format!("artifact names unknown backbone {other:?}")),
    };
    let opt_graph = artifact.topology.to_graph(graph).map_err(|e| e.to_string())?;
    let cfg = GraphRareConfig::default();
    let model = build_model(backbone, graph.feat_dim(), graph.num_classes(), &cfg.model);
    let trainer = Trainer::new(model.as_ref(), &cfg.train);
    persist::apply_model_params(&trainer, &artifact.params).map_err(|e| e.to_string())?;

    let gt = GraphTensors::new(&opt_graph);
    let test = evaluate(model.as_ref(), &gt, graph.labels(), &split.test);
    let val = evaluate(model.as_ref(), &gt, graph.labels(), &split.val);
    progress!(
        "loaded {} model from {} (saved test acc {:.2}%)",
        artifact.backbone,
        path.display(),
        100.0 * artifact.test_acc
    );
    println!("test accuracy (saved model):                {:.2}%", 100.0 * test.accuracy);
    println!("validation accuracy (saved model):          {:.2}%", 100.0 * val.accuracy);
    println!(
        "homophily ratio:                            {:.3} -> {:.3}",
        metrics::homophily_ratio(graph),
        metrics::homophily_ratio(&opt_graph)
    );
    println!(
        "edges:                                      {} -> {}",
        graph.num_edges(),
        opt_graph.num_edges()
    );
    Ok(())
}

/// Runs the DRL loop stepwise, checkpointing every `every` steps, and
/// returns the final report. `resume` starts from the newest checkpoint
/// in `dir` when one exists.
fn run_checkpointed(
    graph: &Graph,
    split: &Split,
    args: &Args,
    cfg: &GraphRareConfig,
    dir: &Path,
) -> Result<RareReport, String> {
    let mut driver = match (args.resume, latest_checkpoint(dir)) {
        (true, Some((step, path))) => {
            progress!("resuming from {} (step {step})", path.display());
            persist::resume_driver(&path, graph, split, args.backbone, cfg)
                .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?
        }
        (true, None) => {
            progress!("no checkpoint found in {}, starting fresh", dir.display());
            RareDriver::new(graph, split, args.backbone, cfg)
        }
        (false, _) => RareDriver::new(graph, split, args.backbone, cfg),
    };
    while driver.step() {
        let done = driver.step_index();
        if args.checkpoint_every > 0 && done % args.checkpoint_every == 0 {
            let path = dir.join(checkpoint_name(done));
            let bytes = persist::save_checkpoint(&path, &driver)
                .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
            progress!("checkpoint written: {} ({bytes} bytes)", path.display());
        }
    }
    Ok(driver.finish())
}

fn main() -> ExitCode {
    // Crash-safe traces: the hook flushes JSONL sinks before unwinding.
    telemetry::install_panic_hook();
    let code = run_main();
    // Sinks are buffered and live in statics (never dropped): flush on
    // every exit path so --telemetry-out files are complete.
    telemetry::clear_sinks();
    code
}

fn run_main() -> ExitCode {
    let args = parse_args();
    telemetry::init_from_env();
    // Tag this process's events with a caller-assigned run id (the
    // serving daemon's per-run streams use the same schema-v3 field).
    telemetry::set_run_id(args.run_id);
    if args.quiet {
        telemetry::set_quiet(true);
    }
    if args.telemetry {
        telemetry::add_sink(Box::new(telemetry::StderrSink));
        telemetry::set_enabled(true);
    }
    if let Some(path) = &args.telemetry_out {
        match telemetry::JsonlSink::create(path) {
            Ok(sink) => {
                telemetry::add_sink(Box::new(sink));
                telemetry::set_enabled(true);
            }
            Err(e) => {
                eprintln!("failed to open telemetry output {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let graph = match io::read_graph(&args.input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("failed to read {}: {e}", args.input.display());
            return ExitCode::FAILURE;
        }
    };
    progress!(
        "loaded {}: {} nodes, {} edges, {} classes, {} features, homophily {:.3}",
        args.input.display(),
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes(),
        graph.feat_dim(),
        metrics::homophily_ratio(&graph)
    );

    let split = stratified_split(graph.labels(), graph.num_classes(), args.split_seed);

    if let Some(model_path) = &args.load_model {
        return match eval_saved_model(model_path, &graph, &split) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("failed to evaluate {}: {e}", model_path.display());
                ExitCode::FAILURE
            }
        };
    }

    let mut cfg = GraphRareConfig::default().with_seed(args.seed);
    cfg.entropy.lambda = args.lambda;
    cfg.steps = args.steps;
    cfg.k_cap = args.k_cap;
    cfg.algo = args.algo;
    cfg.rewirer = args.rewirer;
    cfg.entropy_refresh_every = args.entropy_refresh_every;
    cfg.threads = args.threads;

    progress!(
        "running {}-RARE ({:?}, rewirer {}, {} DRL steps, lambda {}, k-cap {}) ...",
        args.backbone.name(),
        args.algo,
        args.rewirer.name(),
        cfg.steps,
        args.lambda,
        args.k_cap
    );
    let report = match &args.checkpoint_dir {
        Some(dir) => match run_checkpointed(&graph, &split, &args, &cfg, dir) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => graphrare::run(&graph, &split, args.backbone, &cfg),
    };

    if let Some(summary) = &report.telemetry {
        if !telemetry::quiet() {
            eprint!("{}", summary.render_table());
        }
    }

    println!("test accuracy (best-validation checkpoint): {:.2}%", 100.0 * report.test_acc);
    println!("best validation accuracy:                   {:.2}%", 100.0 * report.best_val_acc);
    println!(
        "homophily ratio:                            {:.3} -> {:.3}",
        report.original_homophily, report.optimized_homophily
    );
    println!(
        "edges:                                      {} -> {}",
        graph.num_edges(),
        report.optimized_graph.num_edges()
    );

    if let Some(model_path) = &args.save_model {
        match persist::save_model(model_path, &report) {
            Ok(bytes) => {
                progress!("model artifact written to {} ({bytes} bytes)", model_path.display())
            }
            Err(e) => {
                eprintln!("failed to write model {}: {e}", model_path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(out) = args.output {
        // Route the bundle through the store's atomic temp+rename writer
        // so a kill mid-write cannot leave a torn half-bundle behind.
        let result = io::write_graph_via(&report.optimized_graph, &out, &mut |path, bytes| {
            write_atomic(path, bytes).map(|_| ()).map_err(std::io::Error::other)
        });
        if let Err(e) = result {
            eprintln!("failed to write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        progress!("optimised graph written to {}.{{edges,features,labels}}", out.display());
    }
    ExitCode::SUCCESS
}
