//! `graphrare` — command-line interface to the framework.
//!
//! Runs GraphRARE on a user-supplied attributed graph and writes back the
//! optimised topology plus a metrics summary. Input is the plain-text
//! bundle format of [`graphrare_graph::io`]: `<prefix>.edges`,
//! `<prefix>.features`, `<prefix>.labels`.
//!
//! ```text
//! graphrare --input data/mygraph --output out/mygraph-optimized \
//!           [--backbone gcn|sage|gat|h2gcn] [--lambda 1.0] [--steps 160]
//!           [--seed 42] [--split-seed 0] [--k-cap 10] [--algo ppo|a2c]
//!           [--threads N] [--quiet] [--telemetry] [--telemetry-out PATH]
//! ```
//!
//! `--threads 0` (the default) resolves the worker count from
//! `GRAPHRARE_THREADS`, falling back to the machine's available
//! parallelism; `--threads 1` forces serial execution. Results are
//! bit-identical either way.
//!
//! Observability: progress lines go to **stderr** (suppressed by
//! `--quiet`); the machine-parseable result summary goes to stdout.
//! `--telemetry` enables the registry with the human-readable stderr
//! sink; `--telemetry-out PATH` streams structured JSONL events to
//! `PATH`. `GRAPHRARE_TELEMETRY` configures the same switches from the
//! environment. Telemetry is observational only — enabling it never
//! changes a numeric result.

use std::path::PathBuf;
use std::process::ExitCode;

use graphrare::{run, GraphRareConfig, RlAlgo};
use graphrare_datasets::stratified_split;
use graphrare_gnn::Backbone;
use graphrare_graph::{io, metrics};
use graphrare_telemetry::{self as telemetry, progress};

struct Args {
    input: PathBuf,
    output: Option<PathBuf>,
    backbone: Backbone,
    lambda: f64,
    steps: usize,
    seed: u64,
    split_seed: u64,
    k_cap: usize,
    algo: RlAlgo,
    threads: usize,
    quiet: bool,
    telemetry: bool,
    telemetry_out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: graphrare --input <prefix> [--output <prefix>] \
         [--backbone gcn|sage|gat|h2gcn] [--lambda F] [--steps N] \
         [--seed N] [--split-seed N] [--k-cap N] [--algo ppo|a2c] \
         [--threads N] [--quiet] [--telemetry] [--telemetry-out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        input: PathBuf::new(),
        output: None,
        backbone: Backbone::Gcn,
        lambda: 1.0,
        steps: 160,
        seed: 42,
        split_seed: 0,
        k_cap: 10,
        algo: RlAlgo::Ppo,
        threads: 0,
        quiet: false,
        telemetry: false,
        telemetry_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut have_input = false;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--input" => {
                args.input = PathBuf::from(value(&mut i));
                have_input = true;
            }
            "--output" => args.output = Some(PathBuf::from(value(&mut i))),
            "--backbone" => {
                args.backbone = match value(&mut i).to_lowercase().as_str() {
                    "gcn" => Backbone::Gcn,
                    "sage" | "graphsage" => Backbone::Sage,
                    "gat" => Backbone::Gat,
                    "h2gcn" => Backbone::H2gcn,
                    other => {
                        eprintln!("unknown backbone {other}");
                        usage()
                    }
                }
            }
            "--lambda" => args.lambda = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--steps" => args.steps = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--split-seed" => args.split_seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--k-cap" => args.k_cap = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--quiet" => args.quiet = true,
            "--telemetry" => args.telemetry = true,
            "--telemetry-out" => args.telemetry_out = Some(PathBuf::from(value(&mut i))),
            "--algo" => {
                args.algo = match value(&mut i).to_lowercase().as_str() {
                    "ppo" => RlAlgo::Ppo,
                    "a2c" => RlAlgo::A2c,
                    other => {
                        eprintln!("unknown algorithm {other}");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
        i += 1;
    }
    if !have_input {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    telemetry::init_from_env();
    if args.quiet {
        telemetry::set_quiet(true);
    }
    if args.telemetry {
        telemetry::add_sink(Box::new(telemetry::StderrSink));
        telemetry::set_enabled(true);
    }
    if let Some(path) = &args.telemetry_out {
        match telemetry::JsonlSink::create(path) {
            Ok(sink) => {
                telemetry::add_sink(Box::new(sink));
                telemetry::set_enabled(true);
            }
            Err(e) => {
                eprintln!("failed to open telemetry output {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let graph = match io::read_graph(&args.input) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("failed to read {}: {e}", args.input.display());
            return ExitCode::FAILURE;
        }
    };
    progress!(
        "loaded {}: {} nodes, {} edges, {} classes, {} features, homophily {:.3}",
        args.input.display(),
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes(),
        graph.feat_dim(),
        metrics::homophily_ratio(&graph)
    );

    let split = stratified_split(graph.labels(), graph.num_classes(), args.split_seed);
    let mut cfg = GraphRareConfig::default().with_seed(args.seed);
    cfg.entropy.lambda = args.lambda;
    cfg.steps = args.steps;
    cfg.k_cap = args.k_cap;
    cfg.algo = args.algo;
    cfg.threads = args.threads;

    progress!(
        "running {}-RARE ({:?}, {} DRL steps, lambda {}, k-cap {}) ...",
        args.backbone.name(),
        args.algo,
        cfg.steps,
        args.lambda,
        args.k_cap
    );
    let report = run(&graph, &split, args.backbone, &cfg);

    if let Some(summary) = &report.telemetry {
        if !telemetry::quiet() {
            eprint!("{}", summary.render_table());
        }
    }

    println!("test accuracy (best-validation checkpoint): {:.2}%", 100.0 * report.test_acc);
    println!("best validation accuracy:                   {:.2}%", 100.0 * report.best_val_acc);
    println!(
        "homophily ratio:                            {:.3} -> {:.3}",
        report.original_homophily, report.optimized_homophily
    );
    println!(
        "edges:                                      {} -> {}",
        graph.num_edges(),
        report.optimized_graph.num_edges()
    );

    if let Some(out) = args.output {
        if let Err(e) = io::write_graph(&report.optimized_graph, &out) {
            eprintln!("failed to write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        progress!("optimised graph written to {}.{{edges,features,labels}}", out.display());
    }
    ExitCode::SUCCESS
}
