//! The DRL reward (Eq. 11) and its ablation alternative.

/// A snapshot of GNN training-set performance at one step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfSnapshot {
    /// Training accuracy `acc_t`.
    pub accuracy: f64,
    /// Training loss `loss_t`.
    pub loss: f64,
    /// Training macro-AUC (used by the alternative reward).
    pub auc: f64,
}

/// Reward function selector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RewardKind {
    /// Eq. 11: `R = (acc_t − acc_{t−1}) + λ_r (loss_{t−1} − loss_t)`.
    AccLoss {
        /// The `λ_r` mixing coefficient.
        lambda_r: f64,
    },
    /// Table V "GCN-RARE-reward": AUC improvement instead of Eq. 11.
    Auc,
}

impl Default for RewardKind {
    fn default() -> Self {
        RewardKind::AccLoss { lambda_r: 1.0 }
    }
}

impl RewardKind {
    /// Computes `R(S_t)` from the previous and current snapshots.
    pub fn compute(&self, prev: &PerfSnapshot, cur: &PerfSnapshot) -> f32 {
        match *self {
            RewardKind::AccLoss { lambda_r } => {
                ((cur.accuracy - prev.accuracy) + lambda_r * (prev.loss - cur.loss)) as f32
            }
            RewardKind::Auc => (cur.auc - prev.auc) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: PerfSnapshot = PerfSnapshot { accuracy: 0.5, loss: 1.0, auc: 0.6 };
    const B: PerfSnapshot = PerfSnapshot { accuracy: 0.6, loss: 0.8, auc: 0.7 };

    #[test]
    fn improvement_gives_positive_reward() {
        let r = RewardKind::default().compute(&A, &B);
        assert!((r - 0.3).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn regression_gives_negative_reward() {
        let r = RewardKind::default().compute(&B, &A);
        assert!((r + 0.3).abs() < 1e-6);
    }

    #[test]
    fn lambda_r_scales_loss_term() {
        let r = RewardKind::AccLoss { lambda_r: 0.0 }.compute(&A, &B);
        assert!((r - 0.1).abs() < 1e-6, "accuracy term only, got {r}");
        let r2 = RewardKind::AccLoss { lambda_r: 2.0 }.compute(&A, &B);
        assert!((r2 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn auc_reward_uses_auc_only() {
        let r = RewardKind::Auc.compute(&A, &B);
        assert!((r - 0.1).abs() < 1e-6);
    }

    #[test]
    fn no_change_zero_reward() {
        assert_eq!(RewardKind::default().compute(&A, &A), 0.0);
        assert_eq!(RewardKind::Auc.compute(&B, &B), 0.0);
    }
}
