//! Algorithm 1: joint end-to-end training of the GNN and the DRL module.

use graphrare_datasets::Split;
use graphrare_entropy::{EntropySequences, RelativeEntropyTable};
use graphrare_gnn::metrics::macro_auc;
use graphrare_gnn::{build_model, evaluate, Backbone, GnnModel, GraphTensors, Trainer};
use graphrare_graph::{metrics, Graph};
use graphrare_rl::{
    A2cAgent, A2cConfig, GlobalPolicy, PpoAgent, PpoStats, RolloutBuffer, SharedPolicy, ValueNet,
};
use graphrare_telemetry as telemetry;

use crate::config::{GraphRareConfig, PolicyKind, RlAlgo, SequenceMode};
use crate::reward::{PerfSnapshot, RewardKind};
use crate::state::TopoState;
use crate::topology::TopologyOptimizer;

/// Per-step traces of one GraphRARE run (Figs. 6a–6c).
#[derive(Clone, Debug, Default)]
pub struct RunTraces {
    /// Training accuracy after each DRL step.
    pub train_acc: Vec<f64>,
    /// Validation accuracy after each DRL step.
    pub val_acc: Vec<f64>,
    /// Homophily ratio of `G_t` at each step (Fig. 6b).
    pub homophily: Vec<f64>,
    /// Mean reward per update window (Fig. 6c).
    pub episode_rewards: Vec<f32>,
    /// PPO diagnostics per update.
    pub ppo_stats: Vec<PpoStats>,
}

/// Result of one GraphRARE run.
#[derive(Clone, Debug)]
pub struct RareReport {
    /// Name of the wrapped backbone.
    pub backbone: &'static str,
    /// Test accuracy at the best-validation checkpoint.
    pub test_acc: f64,
    /// Best validation accuracy observed.
    pub best_val_acc: f64,
    /// Edge homophily of the original graph.
    pub original_homophily: f64,
    /// Edge homophily of the optimised (best-validation) graph (Fig. 7).
    pub optimized_homophily: f64,
    /// Per-step traces.
    pub traces: RunTraces,
    /// The optimised graph itself.
    pub optimized_graph: Graph,
    /// Run-scoped telemetry aggregate (spans, counters, histograms)
    /// when the global registry was enabled for the run, else `None`.
    /// Strictly observational: every other field is bit-identical
    /// whether or not telemetry was on.
    pub telemetry: Option<telemetry::Summary>,
}

enum AgentBox {
    PpoGlobal(PpoAgent<GlobalPolicy>),
    PpoShared(PpoAgent<SharedPolicy>),
    A2cGlobal(A2cAgent<GlobalPolicy>),
    A2cShared(A2cAgent<SharedPolicy>),
}

impl AgentBox {
    fn new(kind: PolicyKind, num_nodes: usize, cfg: &GraphRareConfig) -> Self {
        let state_dim = 2 * num_nodes;
        let a2c = A2cConfig { seed: cfg.ppo.seed, ..Default::default() };
        match (cfg.algo, kind) {
            (RlAlgo::Ppo, PolicyKind::Global { hidden }) => {
                let policy = GlobalPolicy::new(state_dim, hidden, 2 * num_nodes, cfg.ppo.seed);
                let value = ValueNet::new(state_dim, hidden, cfg.ppo.seed.wrapping_add(17));
                AgentBox::PpoGlobal(PpoAgent::new(policy, value, cfg.ppo))
            }
            (RlAlgo::Ppo, PolicyKind::Shared { hidden }) => {
                let policy = SharedPolicy::new(num_nodes, 2, hidden, cfg.ppo.seed);
                let value = ValueNet::new(state_dim, hidden, cfg.ppo.seed.wrapping_add(17));
                AgentBox::PpoShared(PpoAgent::new(policy, value, cfg.ppo))
            }
            (RlAlgo::A2c, PolicyKind::Global { hidden }) => {
                let policy = GlobalPolicy::new(state_dim, hidden, 2 * num_nodes, cfg.ppo.seed);
                let value = ValueNet::new(state_dim, hidden, cfg.ppo.seed.wrapping_add(17));
                AgentBox::A2cGlobal(A2cAgent::new(policy, value, a2c))
            }
            (RlAlgo::A2c, PolicyKind::Shared { hidden }) => {
                let policy = SharedPolicy::new(num_nodes, 2, hidden, cfg.ppo.seed);
                let value = ValueNet::new(state_dim, hidden, cfg.ppo.seed.wrapping_add(17));
                AgentBox::A2cShared(A2cAgent::new(policy, value, a2c))
            }
        }
    }

    fn act(&mut self, state: &[f32]) -> (Vec<u8>, f32, f32) {
        match self {
            AgentBox::PpoGlobal(a) => a.act(state),
            AgentBox::PpoShared(a) => a.act(state),
            AgentBox::A2cGlobal(a) => a.act(state),
            AgentBox::A2cShared(a) => a.act(state),
        }
    }

    fn value_of(&self, state: &[f32]) -> f32 {
        match self {
            AgentBox::PpoGlobal(a) => a.value_of(state),
            AgentBox::PpoShared(a) => a.value_of(state),
            AgentBox::A2cGlobal(a) => a.value_of(state),
            AgentBox::A2cShared(a) => a.value_of(state),
        }
    }

    /// Runs the agent's update; A2C stats are reported through the same
    /// `PpoStats` shape (approx_kl stays 0 — there is no old policy).
    fn update(&mut self, buffer: &RolloutBuffer, last_value: f32) -> PpoStats {
        match self {
            AgentBox::PpoGlobal(a) => a.update(buffer, last_value),
            AgentBox::PpoShared(a) => a.update(buffer, last_value),
            AgentBox::A2cGlobal(a) => {
                let s = a.update(buffer, last_value);
                PpoStats {
                    policy_loss: s.policy_loss,
                    value_loss: s.value_loss,
                    entropy: s.entropy,
                    approx_kl: 0.0,
                }
            }
            AgentBox::A2cShared(a) => {
                let s = a.update(buffer, last_value);
                PpoStats {
                    policy_loss: s.policy_loss,
                    value_loss: s.value_loss,
                    entropy: s.entropy,
                    approx_kl: 0.0,
                }
            }
        }
    }
}

/// Training-set performance snapshot (accuracy, loss and — if the reward
/// needs it — macro AUC).
fn snapshot(
    model: &dyn GnnModel,
    gt: &GraphTensors,
    labels: &[usize],
    train_mask: &[usize],
    num_classes: usize,
    want_auc: bool,
) -> PerfSnapshot {
    let eval = evaluate(model, gt, labels, train_mask);
    let auc = if want_auc { macro_auc(&eval.logits, labels, train_mask, num_classes) } else { 0.5 };
    PerfSnapshot { accuracy: eval.accuracy, loss: eval.loss, auc }
}

/// Runs the full GraphRARE framework (Algorithm 1) on one data split,
/// wrapping `backbone`, and reports test accuracy at the best-validation
/// checkpoint together with the optimised topology.
pub fn run(graph: &Graph, split: &Split, backbone: Backbone, cfg: &GraphRareConfig) -> RareReport {
    // Apply the thread knob before the first kernel call; 0 keeps the
    // env-var/auto resolution (see `graphrare_tensor::parallel`).
    graphrare_tensor::parallel::set_threads(cfg.threads);
    // The run-scoped baseline is taken before the entropy precompute so
    // the report's telemetry aggregate covers the whole of Algorithm 1.
    let baseline = telemetry::enabled().then(telemetry::snapshot);
    // Lines 1–6: relative entropy and sequences, computed once.
    let table = RelativeEntropyTable::new(graph, &cfg.entropy);
    let seqs = EntropySequences::build(graph, &table, &cfg.sequences);
    let seqs = match cfg.sequence_mode {
        SequenceMode::Entropy => seqs,
        SequenceMode::Shuffled { seed } => seqs.shuffled(seed),
    };
    run_inner(graph, seqs, split, backbone, cfg, baseline)
}

/// [`run`] with externally supplied sequences (used by ablations that
/// manipulate the rankings).
pub fn run_with_sequences(
    graph: &Graph,
    sequences: EntropySequences,
    split: &Split,
    backbone: Backbone,
    cfg: &GraphRareConfig,
) -> RareReport {
    let baseline = telemetry::enabled().then(telemetry::snapshot);
    run_inner(graph, sequences, split, backbone, cfg, baseline)
}

/// Algorithm 1 proper, shared by [`run`] and [`run_with_sequences`];
/// `baseline` is the registry snapshot the run-scoped telemetry
/// aggregate is measured against.
fn run_inner(
    graph: &Graph,
    sequences: EntropySequences,
    split: &Split,
    backbone: Backbone,
    cfg: &GraphRareConfig,
    baseline: Option<telemetry::Summary>,
) -> RareReport {
    graphrare_tensor::parallel::set_threads(cfg.threads);
    let run_clock = telemetry::Stopwatch::start();
    let run_span = telemetry::span("driver.run");
    let labels = graph.labels().to_vec();
    let num_classes = graph.num_classes();
    let want_auc = matches!(cfg.reward, RewardKind::Auc);

    let topo = TopologyOptimizer::new(graph.clone(), sequences, cfg.edit_mode);
    let mut state = TopoState::new(topo.k_bounds(cfg.k_cap), topo.d_bounds(cfg.k_cap));

    let model = build_model(backbone, graph.feat_dim(), num_classes, &cfg.model);
    let mut trainer = Trainer::new(model.as_ref(), &cfg.train);

    telemetry::emit_with(|| {
        telemetry::Event::new("run_start")
            .str("backbone", model.name())
            .u64("nodes", graph.num_nodes() as u64)
            .u64("edges", graph.num_edges() as u64)
            .f64("homophily", metrics::homophily_ratio(graph))
            .u64("steps", cfg.steps as u64)
            .u64("threads", graphrare_tensor::parallel::current_threads() as u64)
    });

    // Warm-up on the original graph so the reward signal and the RL
    // loop's validation comparisons reflect a (near-)converged model.
    // Early-stopped with best-validation restore, like a plain fit.
    let gt0 = GraphTensors::new(topo.base());
    {
        let mut warm_best = f64::NEG_INFINITY;
        let mut warm_snap = trainer.snapshot();
        let mut since = 0usize;
        for _ in 0..cfg.warmup_epochs {
            trainer.train_epoch(model.as_ref(), &gt0, &labels, &split.train);
            let val = evaluate(model.as_ref(), &gt0, &labels, &split.val);
            if val.accuracy > warm_best {
                warm_best = val.accuracy;
                warm_snap = trainer.snapshot();
                since = 0;
            } else {
                since += 1;
                if since >= cfg.train.patience {
                    telemetry::emit_with(|| {
                        telemetry::Event::new("early_stop")
                            .str("phase", "warmup")
                            .f64("best_val_acc", warm_best)
                    });
                    break;
                }
            }
        }
        trainer.restore(&warm_snap);
    }
    let warm_params = trainer.snapshot();

    let mut agent = AgentBox::new(cfg.policy, graph.num_nodes(), cfg);

    let mut prev = snapshot(model.as_ref(), &gt0, &labels, &split.train, num_classes, want_auc);
    let mut max_acc = prev.accuracy;

    let val0 = evaluate(model.as_ref(), &gt0, &labels, &split.val);
    let mut best_val = val0.accuracy;
    let mut best_params = trainer.snapshot();
    let mut best_graph = topo.base().clone();

    let mut buffer = RolloutBuffer::new();
    let mut traces = RunTraces::default();
    let mut window_reward = 0f32;
    let mut window_steps = 0usize;

    let base_edges = topo.base().num_edges();
    for t in 0..cfg.steps {
        let iter_clock = telemetry::Stopwatch::start();
        let _iter_span = telemetry::span("driver.iter");
        // DRL step: act on S_t, transition to S_{t+1} (Eq. 10), rebuild G.
        let features = state.features();
        let (actions, logp, value) = agent.act(&features);
        state.apply(&actions);
        let g_t = topo.materialize(&state);
        let gt = GraphTensors::new(&g_t);

        // Lines 9–13: evaluate; fine-tune on improvement.
        let cur = snapshot(model.as_ref(), &gt, &labels, &split.train, num_classes, want_auc);
        let finetuned = cur.accuracy > max_acc;
        if finetuned {
            max_acc = cur.accuracy;
            trainer.train_epochs(model.as_ref(), &gt, &labels, &split.train, cfg.finetune_epochs);
        }

        // Lines 14–16: reward and transition bookkeeping.
        let reward = cfg.reward.compute(&prev, &cur);
        prev = cur;
        window_reward += reward;
        window_steps += 1;
        let window_end = window_steps == cfg.update_every;
        buffer.push(features, actions, logp, value, reward, window_end && cfg.reset_each_episode);

        // Traces + best-checkpoint tracking.
        let val_eval = evaluate(model.as_ref(), &gt, &labels, &split.val);
        let hom = metrics::homophily_ratio(&g_t);
        let g_t_edges = g_t.num_edges();
        traces.train_acc.push(prev.accuracy);
        traces.val_acc.push(val_eval.accuracy);
        traces.homophily.push(hom);
        if val_eval.accuracy > best_val {
            best_val = val_eval.accuracy;
            best_params = trainer.snapshot();
            best_graph = g_t;
        }

        // One structured event per outer iteration. Emitted before the
        // window update so the k/d vector is read pre-reset; fields are
        // copies of values the loop computes anyway — telemetry observes,
        // it never steers.
        telemetry::counter("driver.iters", 1);
        telemetry::emit_with(|| {
            let n = state.num_nodes();
            let (mut k_max_used, mut d_max_used) = (0usize, 0usize);
            for v in 0..n {
                k_max_used = k_max_used.max(state.k(v));
                d_max_used = d_max_used.max(state.d(v));
            }
            telemetry::Event::new("iter")
                .u64("step", t as u64)
                .f64("reward", reward as f64)
                .f64("train_acc", prev.accuracy)
                .f64("val_acc", val_eval.accuracy)
                .f64("loss", prev.loss)
                .f64("homophily", hom)
                .u64("edges", g_t_edges as u64)
                .i64("edge_delta", g_t_edges as i64 - base_edges as i64)
                .u64("edges_added", state.total_k() as u64)
                .u64("edges_deleted", state.total_d() as u64)
                .f64("k_mean", state.total_k() as f64 / n.max(1) as f64)
                .u64("k_max", k_max_used as u64)
                .f64("d_mean", state.total_d() as f64 / n.max(1) as f64)
                .u64("d_max", d_max_used as u64)
                .bool("finetuned", finetuned)
                .u64("wall_ns", iter_clock.ns())
        });

        if window_end {
            let window_mean = window_reward / cfg.update_every.max(1) as f32;
            traces.episode_rewards.push(window_mean);
            window_reward = 0.0;
            window_steps = 0;
            let last_value =
                if cfg.reset_each_episode { 0.0 } else { agent.value_of(&state.features()) };
            let stats = agent.update(&buffer, last_value);
            telemetry::counter("driver.ppo_updates", 1);
            telemetry::emit_with(|| {
                telemetry::Event::new("ppo_update")
                    .u64("step", t as u64)
                    .f64("policy_loss", stats.policy_loss as f64)
                    .f64("value_loss", stats.value_loss as f64)
                    .f64("entropy", stats.entropy as f64)
                    .f64("approx_kl", stats.approx_kl as f64)
                    .f64("window_reward", window_mean as f64)
            });
            traces.ppo_stats.push(stats);
            buffer.clear();
            if cfg.reset_each_episode {
                state.reset();
            }
        }
    }

    // Final convergence phase: Algorithm 1 trains the GNN and DRL jointly
    // until convergence, but the compressed DRL loop above only fine-tunes
    // the GNN opportunistically (line 12 fires on accuracy improvements).
    // To give the wrapped model the same optimisation budget as a plain
    // backbone, training continues to convergence — on the selected
    // topology AND, as a guard, on the original topology — and the
    // better-validating (graph, parameters) pair wins. The guard means a
    // mid-training mis-selection of a rewired graph can never leave the
    // enhanced model below its own backbone at convergence.
    let mut winner_graph = best_graph.clone();
    let mut winner_params = best_params.clone();
    // Each candidate resumes from the checkpoint trained on *its own*
    // topology: the selected graph from the RL loop's best snapshot, the
    // base graph from the warm-up snapshot (so the fallback path is the
    // plain backbone's own trajectory).
    let mut candidates = vec![(best_graph.clone(), best_params.clone())];
    // The terminal topology G_T carries the most accumulated rewiring
    // (homophily converges late, Fig. 6b); the mid-run best-val snapshot
    // often under-rewires because it was judged with a semi-trained model.
    let final_graph = topo.materialize(&state);
    if final_graph.edge_vec() != best_graph.edge_vec() {
        candidates.push((final_graph, best_params.clone()));
    }
    if best_graph.edge_vec() != graph.edge_vec() {
        candidates.push((graph.clone(), warm_params));
    }
    for (candidate, checkpoint) in candidates {
        trainer.restore(&checkpoint);
        let gt = GraphTensors::new(&candidate);
        let mut since_best = 0usize;
        for _ in 0..cfg.train.epochs {
            trainer.train_epoch(model.as_ref(), &gt, &labels, &split.train);
            let val_eval = evaluate(model.as_ref(), &gt, &labels, &split.val);
            if val_eval.accuracy > best_val {
                best_val = val_eval.accuracy;
                winner_params = trainer.snapshot();
                winner_graph = candidate.clone();
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= cfg.train.patience {
                    break;
                }
            }
        }
    }

    // Test at the best-validation checkpoint (paper Sec. V-C).
    trainer.restore(&winner_params);
    let best_gt = GraphTensors::new(&winner_graph);
    let test_eval = evaluate(model.as_ref(), &best_gt, &labels, &split.test);

    let optimized_homophily = metrics::homophily_ratio(&winner_graph);
    telemetry::emit_with(|| {
        telemetry::Event::new("run_end")
            .f64("test_acc", test_eval.accuracy)
            .f64("best_val_acc", best_val)
            .f64("optimized_homophily", optimized_homophily)
            .u64("wall_ns", run_clock.ns())
    });
    telemetry::flush();
    // Close the run span before the snapshot so the aggregate includes it.
    drop(run_span);

    RareReport {
        backbone: model.name(),
        test_acc: test_eval.accuracy,
        best_val_acc: best_val,
        original_homophily: metrics::homophily_ratio(graph),
        optimized_homophily,
        traces,
        optimized_graph: winner_graph,
        telemetry: baseline.map(|b| telemetry::snapshot().since(&b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};

    fn heterophilic_fixture() -> (Graph, Split) {
        let spec = DatasetSpec {
            name: "hetero-test",
            num_nodes: 60,
            num_edges: 140,
            feat_dim: 20,
            num_classes: 3,
            homophily: 0.15,
            degree_exponent: 0.4,
            feature_signal: 0.8,
            feature_density: 0.04,
        };
        let g = generate_spec(&spec, 3);
        let split = stratified_split(g.labels(), g.num_classes(), 0);
        (g, split)
    }

    #[test]
    fn run_produces_complete_report() {
        let (g, split) = heterophilic_fixture();
        let cfg = GraphRareConfig::fast().with_seed(1);
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        assert_eq!(report.backbone, "GCN");
        assert!((0.0..=1.0).contains(&report.test_acc));
        assert!(report.best_val_acc >= 0.0);
        assert_eq!(report.traces.train_acc.len(), cfg.steps);
        assert_eq!(report.traces.homophily.len(), cfg.steps);
        assert_eq!(report.traces.episode_rewards.len(), cfg.steps / cfg.update_every);
        assert!(report.optimized_graph.num_nodes() == g.num_nodes());
    }

    #[test]
    fn run_is_deterministic_for_fixed_seed() {
        let (g, split) = heterophilic_fixture();
        let cfg = GraphRareConfig::fast().with_seed(7);
        let a = run(&g, &split, Backbone::Gcn, &cfg);
        let b = run(&g, &split, Backbone::Gcn, &cfg);
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.traces.episode_rewards, b.traces.episode_rewards);
        assert_eq!(a.optimized_graph.edge_vec(), b.optimized_graph.edge_vec());
    }

    #[test]
    fn optimization_raises_homophily_on_heterophilic_graph() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(2);
        cfg.steps = 24;
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        // Fig. 7's claim: optimised topology is more homophilic. With the
        // entropy ranking favouring same-class pairs this should hold
        // whenever any edit was kept.
        if report.optimized_graph.edge_vec() != g.edge_vec() {
            assert!(
                report.optimized_homophily >= report.original_homophily - 0.02,
                "homophily dropped: {} -> {}",
                report.original_homophily,
                report.optimized_homophily
            );
        }
    }

    #[test]
    fn episodic_mode_resets_state() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(3);
        cfg.reset_each_episode = true;
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        assert_eq!(report.traces.train_acc.len(), cfg.steps);
    }

    #[test]
    fn a2c_algorithm_variant_runs() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(8);
        cfg.algo = crate::config::RlAlgo::A2c;
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        assert!((0.0..=1.0).contains(&report.test_acc));
        // A2C reports zero approx-KL (no old policy).
        assert!(report.traces.ppo_stats.iter().all(|s| s.approx_kl == 0.0));
    }

    #[test]
    fn shared_policy_variant_runs() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(4);
        cfg.policy = PolicyKind::Shared { hidden: 16 };
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        assert!((0.0..=1.0).contains(&report.test_acc));
    }
}
