//! Algorithm 1: joint end-to-end training of the GNN and the DRL module.
//!
//! The loop is exposed at two granularities: [`run`] /
//! [`run_with_sequences`] execute Algorithm 1 end to end, while
//! [`RareDriver`] runs it one outer DRL step at a time so callers can
//! checkpoint between steps ([`RareDriver::snapshot`] /
//! [`RareDriver::restore`]) and resume a killed run with bit-identical
//! results.

use graphrare_datasets::Split;
use graphrare_entropy::{EntropySequences, IncrementalEntropy, RelativeEntropyTable};
use graphrare_gnn::metrics::macro_auc;
use graphrare_gnn::{build_model, evaluate, Backbone, GnnModel, GraphTensors, Trainer};
use graphrare_graph::{metrics, Graph};
use graphrare_rl::{AgentState, PpoStats, RolloutBuffer};
use graphrare_telemetry as telemetry;
use graphrare_tensor::Matrix;

use graphrare_gnn::TrainerState;

use crate::config::{GraphRareConfig, SequenceMode};
use crate::reward::{PerfSnapshot, RewardKind};
use crate::rewire::{RewireDelta, RewireError, RewiredGraph};
use crate::rewirer::{build_rewirer, Rewirer};
use crate::state::TopoState;
use crate::topology::TopologyOptimizer;

/// Per-step traces of one GraphRARE run (Figs. 6a–6c).
#[derive(Clone, Debug, Default)]
pub struct RunTraces {
    /// Training accuracy after each DRL step.
    pub train_acc: Vec<f64>,
    /// Validation accuracy after each DRL step.
    pub val_acc: Vec<f64>,
    /// Homophily ratio of `G_t` at each step (Fig. 6b).
    pub homophily: Vec<f64>,
    /// Mean reward per update window (Fig. 6c).
    pub episode_rewards: Vec<f32>,
    /// PPO diagnostics per update.
    pub ppo_stats: Vec<PpoStats>,
}

/// Result of one GraphRARE run.
#[derive(Clone, Debug)]
pub struct RareReport {
    /// Name of the wrapped backbone.
    pub backbone: &'static str,
    /// Test accuracy at the best-validation checkpoint.
    pub test_acc: f64,
    /// Best validation accuracy observed.
    pub best_val_acc: f64,
    /// Edge homophily of the original graph.
    pub original_homophily: f64,
    /// Edge homophily of the optimised (best-validation) graph (Fig. 7).
    pub optimized_homophily: f64,
    /// Per-step traces.
    pub traces: RunTraces,
    /// The optimised graph itself.
    pub optimized_graph: Graph,
    /// Model parameters at the best-validation checkpoint, in
    /// `model.params()` order (what `--save-model` persists).
    pub model_params: Vec<Matrix>,
    /// Run-scoped telemetry aggregate (spans, counters, histograms)
    /// when the global registry was enabled for the run, else `None`.
    /// Strictly observational: every other field is bit-identical
    /// whether or not telemetry was on.
    pub telemetry: Option<telemetry::Summary>,
}

/// Training-set performance snapshot (accuracy, loss and — if the reward
/// needs it — macro AUC).
fn perf_snapshot(
    model: &dyn GnnModel,
    gt: &GraphTensors,
    labels: &[usize],
    train_mask: &[usize],
    num_classes: usize,
    want_auc: bool,
) -> PerfSnapshot {
    let eval = evaluate(model, gt, labels, train_mask);
    let auc = if want_auc { macro_auc(&eval.logits, labels, train_mask, num_classes) } else { 0.5 };
    PerfSnapshot { accuracy: eval.accuracy, loss: eval.loss, auc }
}

/// Every mutable piece of the Algorithm-1 loop, captured as plain data
/// between two outer steps.
///
/// A snapshot restored into a driver built over the same graph, split
/// and config ([`RareDriver::new_for_resume`]) continues the run with
/// bit-identical results — floats are carried verbatim and both RNG
/// streams resume mid-sequence. Produced by [`RareDriver::snapshot`],
/// consumed by [`RareDriver::restore`]; the `graphrare::persist` module
/// maps it onto a `graphrare-store` container.
#[derive(Clone, Debug)]
pub struct DriverSnapshot {
    /// Completed outer DRL steps.
    pub step: u64,
    /// GNN trainer: parameters, Adam moments, dropout RNG.
    pub trainer: TrainerState,
    /// Rewirer's learned state (policy/value parameters, Adam moments,
    /// sampling RNG for the DRL strategy; empty for heuristics).
    pub agent: AgentState,
    /// `TopoState` counters `k_v`.
    pub topo_k: Vec<u16>,
    /// `TopoState` counters `d_v`.
    pub topo_d: Vec<u16>,
    /// Per-node `k` bounds (validated against the rebuilt optimiser).
    pub topo_k_max: Vec<u16>,
    /// Per-node `d` bounds (validated against the rebuilt optimiser).
    pub topo_d_max: Vec<u16>,
    /// Previous-step performance snapshot (reward baseline).
    pub prev: PerfSnapshot,
    /// Best training accuracy seen (fine-tune trigger, line 11).
    pub max_acc: f64,
    /// Best validation accuracy seen.
    pub best_val: f64,
    /// Parameter snapshot at the end of warm-up.
    pub warm_params: Vec<Matrix>,
    /// Parameter snapshot at the best-validation step.
    pub best_params: Vec<Matrix>,
    /// Edge list of the best-validation graph.
    pub best_graph_edges: Vec<(u32, u32)>,
    /// In-flight rollout transitions (between agent updates).
    pub buffer: RolloutBuffer,
    /// Per-step traces accumulated so far.
    pub traces: RunTraces,
    /// Reward accumulated in the current update window.
    pub window_reward: f32,
    /// Steps accumulated in the current update window.
    pub window_steps: u64,
}

/// Stepwise executor of Algorithm 1.
///
/// ```text
/// let mut d = RareDriver::new(&graph, &split, backbone, &cfg);
/// while d.step() { /* checkpoint here if desired */ }
/// let report = d.finish();
/// ```
///
/// [`run`] is the one-shot equivalent. The driver exists so callers can
/// interleave the loop with checkpointing: [`snapshot`] captures the
/// complete mutable state between steps, [`restore`] puts it back, and
/// a run killed at step `t` and resumed produces a final [`RareReport`]
/// bit-identical to an uninterrupted one.
///
/// [`snapshot`]: RareDriver::snapshot
/// [`restore`]: RareDriver::restore
pub struct RareDriver {
    cfg: GraphRareConfig,
    split: Split,
    labels: Vec<usize>,
    num_classes: usize,
    want_auc: bool,
    topo: TopologyOptimizer,
    rewired: RewiredGraph,
    /// Reused rewire-delta buffer: `step` stays allocation-free on the
    /// steady-state edge path by writing into this instead of returning
    /// a fresh delta.
    delta: RewireDelta,
    model: Box<dyn GnnModel>,
    trainer: Trainer,
    /// The configured edit-proposal strategy (`cfg.rewirer`): the DRL
    /// agent by default, or one of the deterministic heuristics.
    rewirer: Box<dyn Rewirer>,
    base_edges: usize,
    warm_params: Vec<Matrix>,
    state: TopoState,
    prev: PerfSnapshot,
    max_acc: f64,
    best_val: f64,
    best_params: Vec<Matrix>,
    best_graph: Graph,
    traces: RunTraces,
    window_reward: f32,
    window_steps: usize,
    step: usize,
    baseline: Option<telemetry::Summary>,
    run_clock: telemetry::Stopwatch,
    run_span: Option<telemetry::SpanGuard>,
    /// Incremental entropy engine, present iff `entropy_refresh_every > 0`:
    /// fed every rewire delta so its table/sequences mirror `G_t`, and
    /// consulted at refresh boundaries instead of a from-scratch build.
    engine: Option<IncrementalEntropy>,
    /// The construction-time graph, kept only when refreshes can re-anchor
    /// `topo.base()` away from it (for the final report's original
    /// homophily and the finish-phase fallback candidate).
    original: Option<Graph>,
}

impl RareDriver {
    /// Builds a driver over one data split: precomputes the entropy
    /// sequences (lines 1–6) and warm-trains the backbone on the
    /// original graph, leaving the loop ready at step 0.
    pub fn new(graph: &Graph, split: &Split, backbone: Backbone, cfg: &GraphRareConfig) -> Self {
        // Apply the thread knob before the first kernel call; 0 keeps the
        // env-var/auto resolution (see `graphrare_tensor::parallel`).
        graphrare_tensor::parallel::set_threads(cfg.threads);
        // The run-scoped baseline is taken before the entropy precompute so
        // the report's telemetry aggregate covers the whole of Algorithm 1.
        let baseline = telemetry::enabled().then(telemetry::snapshot);
        let (sequences, engine) = Self::init_sequences(graph, cfg);
        Self::build(graph, sequences, engine, split, backbone, cfg, baseline, false)
    }

    /// [`RareDriver::new`] with externally supplied sequences (ablations).
    /// `entropy_refresh_every` is ignored here: external sequences have no
    /// engine to refresh from, so they stay frozen like the default mode.
    pub fn with_sequences(
        graph: &Graph,
        sequences: EntropySequences,
        split: &Split,
        backbone: Backbone,
        cfg: &GraphRareConfig,
    ) -> Self {
        let baseline = telemetry::enabled().then(telemetry::snapshot);
        Self::build(graph, sequences, None, split, backbone, cfg, baseline, false)
    }

    /// Builds a driver destined for [`RareDriver::restore`]: identical to
    /// [`RareDriver::new`] except the warm-up phase and its evaluations
    /// are skipped, since the restored snapshot overwrites everything the
    /// warm-up produced. Using the driver without restoring is incorrect.
    pub fn new_for_resume(
        graph: &Graph,
        split: &Split,
        backbone: Backbone,
        cfg: &GraphRareConfig,
    ) -> Self {
        graphrare_tensor::parallel::set_threads(cfg.threads);
        let baseline = telemetry::enabled().then(telemetry::snapshot);
        let (sequences, engine) = Self::init_sequences(graph, cfg);
        Self::build(graph, sequences, engine, split, backbone, cfg, baseline, true)
    }

    /// Lines 1–6: relative entropy and sequences, computed once. Fully
    /// deterministic in (graph, cfg), which is what lets a resumed run
    /// recompute them instead of storing them.
    fn sequences_for(graph: &Graph, cfg: &GraphRareConfig) -> EntropySequences {
        let table = RelativeEntropyTable::new(graph, &cfg.entropy);
        let seqs = EntropySequences::build(graph, &table, &cfg.sequences);
        match cfg.sequence_mode {
            SequenceMode::Entropy => seqs,
            SequenceMode::Shuffled { seed } => seqs.shuffled(seed),
        }
    }

    /// Sequence construction, plus the incremental entropy engine when
    /// `entropy_refresh_every > 0`. The engine owns its own copy of the
    /// table and sequences and mirrors every edge flip the rewiring
    /// applies, so a refresh boundary can re-rank against the *current*
    /// graph at dirty-rows cost instead of a from-scratch rebuild.
    fn init_sequences(
        graph: &Graph,
        cfg: &GraphRareConfig,
    ) -> (EntropySequences, Option<IncrementalEntropy>) {
        if cfg.entropy_refresh_every == 0 {
            return (Self::sequences_for(graph, cfg), None);
        }
        let engine = IncrementalEntropy::new(graph, &cfg.entropy, cfg.sequences);
        let seqs = match cfg.sequence_mode {
            SequenceMode::Entropy => engine.sequences().clone(),
            SequenceMode::Shuffled { seed } => engine.sequences().shuffled(seed),
        };
        (seqs, Some(engine))
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        graph: &Graph,
        sequences: EntropySequences,
        engine: Option<IncrementalEntropy>,
        split: &Split,
        backbone: Backbone,
        cfg: &GraphRareConfig,
        baseline: Option<telemetry::Summary>,
        skip_warmup: bool,
    ) -> Self {
        graphrare_tensor::parallel::set_threads(cfg.threads);
        let run_clock = telemetry::Stopwatch::start();
        let run_span = telemetry::span("driver.run");
        let labels = graph.labels().to_vec();
        let num_classes = graph.num_classes();
        let want_auc = matches!(cfg.reward, RewardKind::Auc);

        let topo = TopologyOptimizer::new(graph.clone(), sequences, cfg.edit_mode);
        let state = TopoState::new(topo.k_bounds(cfg.k_cap), topo.d_bounds(cfg.k_cap));
        // The persistent G_t: starts at the base graph (S_0) and is edited
        // incrementally per step; its operator caches warm up here and are
        // row-patched from then on.
        let rewired = RewiredGraph::new(&topo);

        let model = build_model(backbone, graph.feat_dim(), num_classes, &cfg.model);
        let mut trainer = Trainer::new(model.as_ref(), &cfg.train);

        telemetry::emit_with(|| {
            telemetry::Event::new("run_start")
                .str("backbone", model.name())
                .str("rewirer", cfg.rewirer.name())
                .u64("nodes", graph.num_nodes() as u64)
                .u64("edges", graph.num_edges() as u64)
                .f64("homophily", metrics::homophily_ratio(graph))
                .u64("steps", cfg.steps as u64)
                .u64("threads", graphrare_tensor::parallel::current_threads() as u64)
        });

        let gt0 = rewired.tensors();
        if !skip_warmup {
            // Warm-up on the original graph so the reward signal and the RL
            // loop's validation comparisons reflect a (near-)converged model.
            // Early-stopped with best-validation restore, like a plain fit.
            let mut warm_best = f64::NEG_INFINITY;
            let mut warm_snap = trainer.snapshot();
            let mut since = 0usize;
            for _ in 0..cfg.warmup_epochs {
                trainer.train_epoch(model.as_ref(), gt0, &labels, &split.train);
                let val = evaluate(model.as_ref(), gt0, &labels, &split.val);
                if val.accuracy > warm_best {
                    warm_best = val.accuracy;
                    warm_snap = trainer.snapshot();
                    since = 0;
                } else {
                    since += 1;
                    if since >= cfg.train.patience {
                        telemetry::emit_with(|| {
                            telemetry::Event::new("early_stop")
                                .str("phase", "warmup")
                                .f64("best_val_acc", warm_best)
                        });
                        break;
                    }
                }
            }
            trainer.restore(&warm_snap);
        }
        let warm_params = trainer.snapshot();

        let rewirer = build_rewirer(&topo, cfg, &split.train);

        // On the resume path these are placeholders: `restore` overwrites
        // every one of them, so the (expensive) evaluations are skipped.
        let (prev, best_val) = if skip_warmup {
            (PerfSnapshot { accuracy: 0.0, loss: 0.0, auc: 0.5 }, 0.0)
        } else {
            let prev =
                perf_snapshot(model.as_ref(), gt0, &labels, &split.train, num_classes, want_auc);
            let val0 = evaluate(model.as_ref(), gt0, &labels, &split.val);
            (prev, val0.accuracy)
        };
        let max_acc = prev.accuracy;
        let best_params = trainer.snapshot();
        let best_graph = topo.base().clone();
        let base_edges = topo.base().num_edges();
        let original = engine.is_some().then(|| graph.clone());

        Self {
            cfg: *cfg,
            split: split.clone(),
            labels,
            num_classes,
            want_auc,
            topo,
            rewired,
            delta: RewireDelta::default(),
            model,
            trainer,
            rewirer,
            base_edges,
            warm_params,
            state,
            prev,
            max_acc,
            best_val,
            best_params,
            best_graph,
            traces: RunTraces::default(),
            window_reward: 0.0,
            window_steps: 0,
            step: 0,
            baseline,
            run_clock,
            run_span: Some(run_span),
            engine,
            original,
        }
    }

    /// The dataset's original graph `G_0`. With entropy refreshes the
    /// optimiser re-anchors its base on rewired graphs, so `topo.base()`
    /// stops being `G_0` after the first boundary; this accessor keeps the
    /// report's `original_homophily` and the convergence guard honest.
    fn original_graph(&self) -> &Graph {
        self.original.as_ref().unwrap_or_else(|| self.topo.base())
    }

    /// Completed outer DRL steps.
    pub fn step_index(&self) -> usize {
        self.step
    }

    /// Whether the configured number of DRL steps has been run.
    pub fn is_done(&self) -> bool {
        self.step >= self.cfg.steps
    }

    /// The configuration the driver was built with.
    pub fn config(&self) -> &GraphRareConfig {
        &self.cfg
    }

    /// Number of classes of the underlying dataset.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Runs one outer DRL step (Algorithm 1 lines 8–16). Returns `false`
    /// without doing anything once all configured steps have run.
    ///
    /// Panicking wrapper around [`try_step`](Self::try_step) for callers
    /// whose driver state is known-good (a rewire failure here means
    /// in-process corruption, not bad input).
    pub fn step(&mut self) -> bool {
        self.try_step().expect("rewire failed on driver-owned state")
    }

    /// [`step`](Self::step), surfacing rewire-engine failures as a typed
    /// error instead of panicking. A corrupt or version-skewed restored
    /// state is the realistic trigger; the driver must then be discarded
    /// (its graph state may be partially transitioned), but the hosting
    /// process — e.g. a `graphrare-serve` worker — keeps running.
    pub fn try_step(&mut self) -> Result<bool, RewireError> {
        if self.is_done() {
            return Ok(false);
        }
        let t = self.step;
        let iter_clock = telemetry::Stopwatch::start();
        let _iter_span = telemetry::span("driver.step");
        // Proposal step: the configured strategy acts on S_t, the state
        // transitions to S_{t+1} (Eq. 10), and G is rebuilt incrementally.
        let actions = {
            let _span = telemetry::span(self.rewirer.kind().span_name());
            self.rewirer.propose(&self.state)
        };
        self.state.apply(&actions);
        self.rewired.apply_into(&self.topo, &self.state, &mut self.delta)?;
        let delta = &self.delta;
        if let Some(engine) = self.engine.as_mut() {
            if !delta.is_empty() {
                // Mirror the transition into the incremental engine so its
                // H_s table and rankings track G_t at dirty-rows cost.
                let _span = telemetry::span("rewire.entropy_refresh");
                let flips: Vec<(usize, usize, bool)> = delta
                    .removed
                    .iter()
                    .map(|&(u, v)| (u, v, false))
                    .chain(delta.added.iter().map(|&(u, v)| (u, v, true)))
                    .collect();
                engine.apply_flips(&flips);
            }
        }
        let gt = self.rewired.tensors();

        // Lines 9–13: evaluate; fine-tune on improvement.
        let cur = perf_snapshot(
            self.model.as_ref(),
            gt,
            &self.labels,
            &self.split.train,
            self.num_classes,
            self.want_auc,
        );
        let finetuned = cur.accuracy > self.max_acc;
        if finetuned {
            self.max_acc = cur.accuracy;
            self.trainer.train_epochs(
                self.model.as_ref(),
                gt,
                &self.labels,
                &self.split.train,
                self.cfg.finetune_epochs,
            );
        }

        // Lines 14–16: reward and transition bookkeeping.
        let reward = self.cfg.reward.compute(&self.prev, &cur);
        self.prev = cur;
        self.window_reward += reward;
        self.window_steps += 1;
        let window_end = self.window_steps == self.cfg.update_every;

        // Traces + best-checkpoint tracking.
        let val_eval = evaluate(self.model.as_ref(), gt, &self.labels, &self.split.val);
        let hom = self.rewired.homophily_ratio();
        let g_t_edges = self.rewired.num_edges();
        self.traces.train_acc.push(self.prev.accuracy);
        self.traces.val_acc.push(val_eval.accuracy);
        self.traces.homophily.push(hom);
        if val_eval.accuracy > self.best_val {
            self.best_val = val_eval.accuracy;
            self.best_params = self.trainer.snapshot();
            self.best_graph = self.rewired.graph().clone();
        }

        // One structured event per outer iteration. Emitted before the
        // window update so the k/d vector is read pre-reset; fields are
        // copies of values the loop computes anyway — telemetry observes,
        // it never steers.
        telemetry::counter("driver.iters", 1);
        telemetry::emit_with(|| {
            let state = &self.state;
            let n = state.num_nodes();
            let (mut k_max_used, mut d_max_used) = (0usize, 0usize);
            for v in 0..n {
                k_max_used = k_max_used.max(state.k(v));
                d_max_used = d_max_used.max(state.d(v));
            }
            telemetry::Event::new("iter")
                .u64("step", t as u64)
                .f64("reward", reward as f64)
                .f64("train_acc", self.prev.accuracy)
                .f64("val_acc", val_eval.accuracy)
                .f64("loss", self.prev.loss)
                .f64("homophily", hom)
                .u64("edges", g_t_edges as u64)
                .i64("edge_delta", g_t_edges as i64 - self.base_edges as i64)
                .u64("edges_added", state.total_k() as u64)
                .u64("edges_deleted", state.total_d() as u64)
                .f64("k_mean", state.total_k() as f64 / n.max(1) as f64)
                .u64("k_max", k_max_used as u64)
                .f64("d_mean", state.total_d() as f64 / n.max(1) as f64)
                .u64("d_max", d_max_used as u64)
                .bool("finetuned", finetuned)
                .u64("wall_ns", iter_clock.ns())
        });

        // Feed the realised reward back to the strategy. RL-backed
        // strategies buffer the transition and run their policy update at
        // window end (returning its stats); heuristics observe and return
        // `None`, so no `ppo_update` event or trace entry is recorded.
        let stats =
            self.rewirer.feedback(reward, window_end, self.cfg.reset_each_episode, &self.state);
        if window_end {
            let window_mean = self.window_reward / self.cfg.update_every.max(1) as f32;
            self.traces.episode_rewards.push(window_mean);
            self.window_reward = 0.0;
            self.window_steps = 0;
            if let Some(stats) = stats {
                telemetry::counter("driver.ppo_updates", 1);
                telemetry::emit_with(|| {
                    telemetry::Event::new("ppo_update")
                        .u64("step", t as u64)
                        .f64("policy_loss", stats.policy_loss as f64)
                        .f64("value_loss", stats.value_loss as f64)
                        .f64("entropy", stats.entropy as f64)
                        .f64("approx_kl", stats.approx_kl as f64)
                        .f64("window_reward", window_mean as f64)
                });
                self.traces.ppo_stats.push(stats);
            }
            if self.cfg.reset_each_episode {
                self.state.reset();
            }
        }

        self.step += 1;
        if self.cfg.entropy_refresh_every > 0
            && self.step.is_multiple_of(self.cfg.entropy_refresh_every)
            && !self.is_done()
        {
            self.refresh_sequences();
        }
        Ok(true)
    }

    /// Refresh boundary: swap in rankings recomputed against the current
    /// rewired graph (maintained incrementally by the engine) and
    /// re-anchor the topology optimiser on it. The DRL counters reset —
    /// the refreshed deletion sequences list *current* neighbours, so
    /// `G_t` becomes the new `S_0` and the agent observes a state jump.
    fn refresh_sequences(&mut self) {
        let _span = telemetry::span("rewire.entropy_refresh");
        let engine = self.engine.as_ref().expect("refresh_sequences requires the engine");
        debug_assert_eq!(
            engine.graph().edge_vec(),
            self.rewired.graph().edge_vec(),
            "incremental engine fell out of sync with the rewired graph"
        );
        let sequences = match self.cfg.sequence_mode {
            SequenceMode::Entropy => engine.sequences().clone(),
            SequenceMode::Shuffled { seed } => engine.sequences().shuffled(seed),
        };
        self.topo =
            TopologyOptimizer::new(self.rewired.graph().clone(), sequences, self.cfg.edit_mode);
        self.state =
            TopoState::new(self.topo.k_bounds(self.cfg.k_cap), self.topo.d_bounds(self.cfg.k_cap));
        self.rewired.rebase(&self.topo);
        // Prefix-based heuristics recompute their targets against the new
        // rankings; the DRL agent carries its parameters across (no-op).
        self.rewirer.rebase(&self.topo);
        telemetry::counter("rewire.entropy_refreshes", 1);
        telemetry::emit_with(|| {
            telemetry::Event::new("sequence_refresh")
                .u64("step", self.step as u64)
                .u64("edges", self.rewired.num_edges() as u64)
        });
    }

    /// Runs every remaining DRL step.
    pub fn run_to_end(&mut self) {
        while self.step() {}
    }

    /// Final convergence phase + report (Algorithm 1's terminal joint
    /// training). Call after the DRL steps; [`RareDriver::step`] tolerates
    /// being exhausted, `finish` consumes the driver.
    ///
    /// Panicking wrapper around [`try_finish`](Self::try_finish), matching
    /// [`step`](Self::step)/[`try_step`](Self::try_step).
    pub fn finish(self) -> RareReport {
        self.try_finish().expect("rewire failed on driver-owned state")
    }

    /// [`finish`](Self::finish), surfacing rewire-engine failures as a
    /// typed error instead of panicking (the terminal resync replays the
    /// last state transition through the rewire engine).
    pub fn try_finish(mut self) -> Result<RareReport, RewireError> {
        // Algorithm 1 trains the GNN and DRL jointly until convergence, but
        // the compressed DRL loop above only fine-tunes the GNN
        // opportunistically (line 12 fires on accuracy improvements). To
        // give the wrapped model the same optimisation budget as a plain
        // backbone, training continues to convergence — on the selected
        // topology AND, as a guard, on the original topology — and the
        // better-validating (graph, parameters) pair wins. The guard means a
        // mid-training mis-selection of a rewired graph can never leave the
        // enhanced model below its own backbone at convergence.
        let mut winner_graph = self.best_graph.clone();
        let mut winner_params = self.best_params.clone();
        // Each candidate resumes from the checkpoint trained on *its own*
        // topology: the selected graph from the RL loop's best snapshot, the
        // base graph from the warm-up snapshot (so the fallback path is the
        // plain backbone's own trajectory).
        let mut candidates = vec![(self.best_graph.clone(), self.best_params.clone())];
        // The terminal topology G_T carries the most accumulated rewiring
        // (homophily converges late, Fig. 6b); the mid-run best-val snapshot
        // often under-rewires because it was judged with a semi-trained model.
        // Resync first: an episodic reset at the end of the last step can
        // postdate the last incremental apply.
        self.rewired.apply_into(&self.topo, &self.state, &mut self.delta)?;
        let final_graph = self.rewired.graph().clone();
        if final_graph.edge_vec() != self.best_graph.edge_vec() {
            candidates.push((final_graph, self.best_params.clone()));
        }
        if self.best_graph.edge_vec() != self.original_graph().edge_vec() {
            candidates.push((self.original_graph().clone(), self.warm_params.clone()));
        }
        for (candidate, checkpoint) in candidates {
            self.trainer.restore(&checkpoint);
            let gt = GraphTensors::new(&candidate);
            let mut since_best = 0usize;
            for _ in 0..self.cfg.train.epochs {
                self.trainer.train_epoch(self.model.as_ref(), &gt, &self.labels, &self.split.train);
                let val_eval = evaluate(self.model.as_ref(), &gt, &self.labels, &self.split.val);
                if val_eval.accuracy > self.best_val {
                    self.best_val = val_eval.accuracy;
                    winner_params = self.trainer.snapshot();
                    winner_graph = candidate.clone();
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= self.cfg.train.patience {
                        break;
                    }
                }
            }
        }

        // Test at the best-validation checkpoint (paper Sec. V-C).
        self.trainer.restore(&winner_params);
        let best_gt = GraphTensors::new(&winner_graph);
        let test_eval = evaluate(self.model.as_ref(), &best_gt, &self.labels, &self.split.test);

        let optimized_homophily = metrics::homophily_ratio(&winner_graph);
        telemetry::emit_with(|| {
            telemetry::Event::new("run_end")
                .f64("test_acc", test_eval.accuracy)
                .f64("best_val_acc", self.best_val)
                .f64("optimized_homophily", optimized_homophily)
                .u64("wall_ns", self.run_clock.ns())
        });
        // Close the run span before the snapshot (so the aggregate
        // includes it) and before the flush (its drop emits the
        // `driver.run` span event, which must land in the JSONL stream).
        drop(self.run_span.take());
        telemetry::flush();

        Ok(RareReport {
            backbone: self.model.name(),
            test_acc: test_eval.accuracy,
            best_val_acc: self.best_val,
            original_homophily: metrics::homophily_ratio(self.original_graph()),
            optimized_homophily,
            traces: self.traces,
            optimized_graph: winner_graph,
            model_params: winner_params,
            telemetry: self.baseline.map(|b| telemetry::snapshot().since(&b)),
        })
    }

    /// Captures every mutable piece of the loop as plain data. Call
    /// between steps (the driver is never mid-step from the outside).
    pub fn snapshot(&self) -> DriverSnapshot {
        DriverSnapshot {
            step: self.step as u64,
            trainer: self.trainer.export_state(),
            agent: self.rewirer.export_agent(),
            topo_k: self.state.k_vec().to_vec(),
            topo_d: self.state.d_vec().to_vec(),
            topo_k_max: self.state.k_max_vec().to_vec(),
            topo_d_max: self.state.d_max_vec().to_vec(),
            prev: self.prev,
            max_acc: self.max_acc,
            best_val: self.best_val,
            warm_params: self.warm_params.clone(),
            best_params: self.best_params.clone(),
            best_graph_edges: self
                .best_graph
                .edge_vec()
                .into_iter()
                .map(|(u, v)| (u as u32, v as u32))
                .collect(),
            buffer: self.rewirer.export_buffer(),
            traces: self.traces.clone(),
            window_reward: self.window_reward,
            window_steps: self.window_steps as u64,
        }
    }

    /// Overwrites the loop state with a snapshot taken over the same
    /// graph, split and config. Every structural property is validated
    /// before anything is mutated, so a failed restore usually leaves the
    /// driver untouched — and never panics. The one exception is the
    /// final rewire jump: counters that pass the shape checks but
    /// contradict this run's sequences are rejected by the rewire engine
    /// after the loop state was overwritten, so on that error the driver
    /// must be discarded (the error message says so).
    pub fn restore(&mut self, snap: &DriverSnapshot) -> Result<(), String> {
        if self.cfg.entropy_refresh_every > 0 {
            return Err("snapshot/restore is not supported with entropy_refresh_every > 0 (the \
                 incremental entropy engine's state is not captured by snapshots)"
                .to_string());
        }
        if snap.step > self.cfg.steps as u64 {
            return Err(format!(
                "snapshot is at step {} but the config runs only {} steps",
                snap.step, self.cfg.steps
            ));
        }
        if snap.topo_k_max != self.state.k_max_vec() || snap.topo_d_max != self.state.d_max_vec() {
            return Err(
                "snapshot topology bounds disagree with this graph/config (different dataset, \
                 seed, k-cap or edit mode?)"
                    .to_string(),
            );
        }
        let state = TopoState::from_raw(
            snap.topo_k.clone(),
            snap.topo_d.clone(),
            snap.topo_k_max.clone(),
            snap.topo_d_max.clone(),
        )
        .ok_or_else(|| "snapshot topology counters violate their bounds".to_string())?;

        let cur_trainer = self.trainer.snapshot();
        check_param_shapes("trainer parameters", &snap.trainer.params, &cur_trainer)?;
        check_adam_shapes("trainer Adam state", &snap.trainer.adam.moments, &cur_trainer)?;
        check_param_shapes("warm-up parameters", &snap.warm_params, &cur_trainer)?;
        check_param_shapes("best parameters", &snap.best_params, &cur_trainer)?;

        let cur_agent = self.rewirer.export_agent();
        check_param_shapes("agent parameters", &snap.agent.params, &cur_agent.params)?;
        check_adam_shapes("agent Adam state", &snap.agent.adam.moments, &cur_agent.params)?;

        let n = self.topo.base().num_nodes();
        if let Some(&(u, v)) =
            snap.best_graph_edges.iter().find(|&&(u, v)| u as usize >= n || v as usize >= n)
        {
            return Err(format!("snapshot best-graph edge ({u},{v}) references a node >= {n}"));
        }

        let b = &snap.buffer;
        let len = b.rewards.len();
        if b.states.len() != len
            || b.actions.len() != len
            || b.log_probs.len() != len
            || b.values.len() != len
            || b.dones.len() != len
        {
            return Err("snapshot rollout buffer columns disagree in length".to_string());
        }
        if b.states.iter().any(|s| s.len() != 2 * n) || b.actions.iter().any(|a| a.len() != 2 * n) {
            return Err("snapshot rollout buffer rows disagree with the node count".to_string());
        }
        if self.cfg.update_every > 0 && snap.window_steps >= self.cfg.update_every as u64 {
            return Err(format!(
                "snapshot window progress {} is impossible with update-every {}",
                snap.window_steps, self.cfg.update_every
            ));
        }

        // All checks passed — mutate.
        self.trainer.import_state(&snap.trainer);
        self.rewirer.import_agent(&snap.agent);
        self.rewirer.import_buffer(&snap.buffer);
        self.state = state;
        self.prev = snap.prev;
        self.max_acc = snap.max_acc;
        self.best_val = snap.best_val;
        self.warm_params = snap.warm_params.clone();
        self.best_params = snap.best_params.clone();
        let edges: Vec<(usize, usize)> =
            snap.best_graph_edges.iter().map(|&(u, v)| (u as usize, v as usize)).collect();
        let base = self.topo.base();
        self.best_graph = Graph::from_edges(
            n,
            &edges,
            base.features().clone(),
            base.labels().to_vec(),
            self.num_classes,
        );
        self.traces = snap.traces.clone();
        self.window_reward = snap.window_reward;
        self.window_steps = snap.window_steps as usize;
        self.step = snap.step as usize;
        // Jump the persistent G_t to the restored counters so the next
        // step's incremental apply starts from the right topology. A
        // rewire rejection here is a snapshot the structural checks above
        // could not catch (e.g. counters crafted against other sequences);
        // it surfaces as a restore failure, not a panic.
        self.rewired.apply_into(&self.topo, &self.state, &mut self.delta).map_err(|e| {
            format!("snapshot topology counters rejected by the rewire engine: {e}")
        })?;
        telemetry::emit_with(|| telemetry::Event::new("driver_restore").u64("step", snap.step));
        Ok(())
    }
}

fn check_param_shapes(what: &str, got: &[Matrix], expect: &[Matrix]) -> Result<(), String> {
    if got.len() != expect.len() {
        return Err(format!("snapshot {what}: {} tensors, model has {}", got.len(), expect.len()));
    }
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        if g.shape() != e.shape() {
            return Err(format!(
                "snapshot {what}: tensor {i} is {:?}, model expects {:?}",
                g.shape(),
                e.shape()
            ));
        }
    }
    Ok(())
}

fn check_adam_shapes(
    what: &str,
    moments: &[(Matrix, Matrix)],
    params: &[Matrix],
) -> Result<(), String> {
    if moments.len() != params.len() {
        return Err(format!(
            "snapshot {what}: {} moment pairs, model has {} parameters",
            moments.len(),
            params.len()
        ));
    }
    for (i, ((m, v), p)) in moments.iter().zip(params).enumerate() {
        if m.shape() != p.shape() || v.shape() != p.shape() {
            return Err(format!("snapshot {what}: moment pair {i} disagrees with parameter shape"));
        }
    }
    Ok(())
}

/// Runs the full GraphRARE framework (Algorithm 1) on one data split,
/// wrapping `backbone`, and reports test accuracy at the best-validation
/// checkpoint together with the optimised topology.
pub fn run(graph: &Graph, split: &Split, backbone: Backbone, cfg: &GraphRareConfig) -> RareReport {
    let mut driver = RareDriver::new(graph, split, backbone, cfg);
    driver.run_to_end();
    driver.finish()
}

/// [`run`] with externally supplied sequences (used by ablations that
/// manipulate the rankings).
pub fn run_with_sequences(
    graph: &Graph,
    sequences: EntropySequences,
    split: &Split,
    backbone: Backbone,
    cfg: &GraphRareConfig,
) -> RareReport {
    let mut driver = RareDriver::with_sequences(graph, sequences, split, backbone, cfg);
    driver.run_to_end();
    driver.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use crate::rewirer::RewirerKind;
    use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};

    fn heterophilic_fixture() -> (Graph, Split) {
        let spec = DatasetSpec {
            name: "hetero-test",
            num_nodes: 60,
            num_edges: 140,
            feat_dim: 20,
            num_classes: 3,
            homophily: 0.15,
            degree_exponent: 0.4,
            feature_signal: 0.8,
            feature_density: 0.04,
        };
        let g = generate_spec(&spec, 3);
        let split = stratified_split(g.labels(), g.num_classes(), 0);
        (g, split)
    }

    fn assert_reports_identical(a: &RareReport, b: &RareReport) {
        assert_eq!(a.test_acc.to_bits(), b.test_acc.to_bits());
        assert_eq!(a.best_val_acc.to_bits(), b.best_val_acc.to_bits());
        assert_eq!(a.traces.train_acc, b.traces.train_acc);
        assert_eq!(a.traces.val_acc, b.traces.val_acc);
        assert_eq!(a.traces.homophily, b.traces.homophily);
        assert_eq!(a.traces.episode_rewards, b.traces.episode_rewards);
        assert_eq!(a.optimized_graph.edge_vec(), b.optimized_graph.edge_vec());
        assert_eq!(a.model_params, b.model_params);
    }

    #[test]
    fn run_produces_complete_report() {
        let (g, split) = heterophilic_fixture();
        let cfg = GraphRareConfig::fast().with_seed(1);
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        assert_eq!(report.backbone, "GCN");
        assert!((0.0..=1.0).contains(&report.test_acc));
        assert!(report.best_val_acc >= 0.0);
        assert_eq!(report.traces.train_acc.len(), cfg.steps);
        assert_eq!(report.traces.homophily.len(), cfg.steps);
        assert_eq!(report.traces.episode_rewards.len(), cfg.steps / cfg.update_every);
        assert!(report.optimized_graph.num_nodes() == g.num_nodes());
        assert!(!report.model_params.is_empty());
    }

    #[test]
    fn run_is_deterministic_for_fixed_seed() {
        let (g, split) = heterophilic_fixture();
        let cfg = GraphRareConfig::fast().with_seed(7);
        let a = run(&g, &split, Backbone::Gcn, &cfg);
        let b = run(&g, &split, Backbone::Gcn, &cfg);
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.traces.episode_rewards, b.traces.episode_rewards);
        assert_eq!(a.optimized_graph.edge_vec(), b.optimized_graph.edge_vec());
    }

    #[test]
    fn optimization_raises_homophily_on_heterophilic_graph() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(2);
        cfg.steps = 24;
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        // Fig. 7's claim: optimised topology is more homophilic. With the
        // entropy ranking favouring same-class pairs this should hold
        // whenever any edit was kept.
        if report.optimized_graph.edge_vec() != g.edge_vec() {
            assert!(
                report.optimized_homophily >= report.original_homophily - 0.02,
                "homophily dropped: {} -> {}",
                report.original_homophily,
                report.optimized_homophily
            );
        }
    }

    #[test]
    fn episodic_mode_resets_state() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(3);
        cfg.reset_each_episode = true;
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        assert_eq!(report.traces.train_acc.len(), cfg.steps);
    }

    #[test]
    fn a2c_algorithm_variant_runs() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(8);
        cfg.algo = crate::config::RlAlgo::A2c;
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        assert!((0.0..=1.0).contains(&report.test_acc));
        // A2C reports zero approx-KL (no old policy).
        assert!(report.traces.ppo_stats.iter().all(|s| s.approx_kl == 0.0));
    }

    #[test]
    fn shared_policy_variant_runs() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(4);
        cfg.policy = PolicyKind::Shared { hidden: 16 };
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        assert!((0.0..=1.0).contains(&report.test_acc));
    }

    #[test]
    fn stepwise_driver_matches_one_shot_run() {
        let (g, split) = heterophilic_fixture();
        let cfg = GraphRareConfig::fast().with_seed(11);
        let one_shot = run(&g, &split, Backbone::Gcn, &cfg);
        let mut driver = RareDriver::new(&g, &split, Backbone::Gcn, &cfg);
        let mut steps = 0;
        while driver.step() {
            steps += 1;
        }
        assert_eq!(steps, cfg.steps);
        assert!(driver.is_done());
        assert!(!driver.step(), "exhausted driver must refuse further steps");
        let stepped = driver.finish();
        assert_reports_identical(&one_shot, &stepped);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let (g, split) = heterophilic_fixture();
        let cfg = GraphRareConfig::fast().with_seed(13);

        let uninterrupted = run(&g, &split, Backbone::Gcn, &cfg);

        // Kill the run after 3 steps...
        let mut first = RareDriver::new(&g, &split, Backbone::Gcn, &cfg);
        for _ in 0..3 {
            assert!(first.step());
        }
        let snap = first.snapshot();
        assert_eq!(snap.step, 3);
        drop(first);

        // ...and resume it in a "fresh process".
        let mut resumed = RareDriver::new_for_resume(&g, &split, Backbone::Gcn, &cfg);
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.step_index(), 3);
        resumed.run_to_end();
        let report = resumed.finish();
        assert_reports_identical(&uninterrupted, &report);
    }

    #[test]
    fn snapshot_is_passive_and_repeatable() {
        let (g, split) = heterophilic_fixture();
        let cfg = GraphRareConfig::fast().with_seed(17);
        let mut driver = RareDriver::new(&g, &split, Backbone::Gcn, &cfg);
        driver.step();
        let a = driver.snapshot();
        let b = driver.snapshot();
        assert_eq!(a.trainer.rng, b.trainer.rng, "snapshot must not advance RNG streams");
        assert_eq!(a.agent.rng, b.agent.rng);
        assert_eq!(a.trainer.params, b.trainer.params);
        // The driver still finishes normally after snapshotting.
        driver.run_to_end();
        let _ = driver.finish();
    }

    #[test]
    fn restore_rejects_foreign_snapshot() {
        let (g, split) = heterophilic_fixture();
        let cfg = GraphRareConfig::fast().with_seed(19);
        let mut driver = RareDriver::new(&g, &split, Backbone::Gcn, &cfg);
        driver.step();
        let snap = driver.snapshot();

        // Same dataset family, different size -> bounds disagree.
        let spec = DatasetSpec {
            name: "other",
            num_nodes: 40,
            num_edges: 90,
            feat_dim: 20,
            num_classes: 3,
            homophily: 0.2,
            degree_exponent: 0.4,
            feature_signal: 0.8,
            feature_density: 0.04,
        };
        let g2 = generate_spec(&spec, 5);
        let split2 = stratified_split(g2.labels(), g2.num_classes(), 0);
        let mut other = RareDriver::new_for_resume(&g2, &split2, Backbone::Gcn, &cfg);
        assert!(other.restore(&snap).is_err());

        // Tampered counters are rejected too.
        let mut bad = snap.clone();
        if let Some(first_bound) = bad.topo_k_max.first().copied() {
            bad.topo_k[0] = first_bound + 1;
        }
        let mut same = RareDriver::new_for_resume(&g, &split, Backbone::Gcn, &cfg);
        assert!(same.restore(&bad).is_err());
    }

    #[test]
    fn refresh_boundary_matches_fresh_build() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(23);
        cfg.entropy_refresh_every = 1;
        let mut driver = RareDriver::new(&g, &split, Backbone::Gcn, &cfg);
        for _ in 0..3 {
            assert!(driver.step());
        }
        // After each step a refresh boundary fired (refresh_every = 1), so
        // the optimiser's rankings must equal a from-scratch build against
        // the current rewired graph — the incremental engine's contract.
        let current = driver.rewired.graph();
        let table = RelativeEntropyTable::new(current, &cfg.entropy);
        let fresh = EntropySequences::build(current, &table, &cfg.sequences);
        assert_eq!(driver.topo.sequences(), &fresh);
        assert_eq!(driver.topo.base().edge_vec(), current.edge_vec());
        // And the re-anchored optimiser still drives a full run to completion.
        driver.run_to_end();
        let report = driver.finish();
        assert_eq!(report.traces.train_acc.len(), cfg.steps);
        assert_eq!(
            report.original_homophily,
            graphrare_graph::metrics::homophily_ratio(&g),
            "original_homophily must be measured on G_0, not the re-anchored base"
        );
    }

    #[test]
    fn refresh_enabled_run_is_deterministic() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(29);
        cfg.entropy_refresh_every = 4;
        let a = run(&g, &split, Backbone::Gcn, &cfg);
        let b = run(&g, &split, Backbone::Gcn, &cfg);
        assert_reports_identical(&a, &b);
        assert_eq!(a.traces.train_acc.len(), cfg.steps);
    }

    #[test]
    fn heuristic_strategies_run_and_resume_bit_identically() {
        let (g, split) = heterophilic_fixture();
        for kind in [RewirerKind::Dhgr, RewirerKind::Reference, RewirerKind::None] {
            let mut cfg = GraphRareConfig::fast().with_seed(37);
            cfg.rewirer = kind;
            let uninterrupted = run(&g, &split, Backbone::Gcn, &cfg);
            assert_eq!(uninterrupted.traces.train_acc.len(), cfg.steps);
            // Heuristics run no policy update, so no ppo_stats rows.
            assert!(uninterrupted.traces.ppo_stats.is_empty());
            // Same reward bookkeeping as the DRL loop.
            assert_eq!(uninterrupted.traces.episode_rewards.len(), cfg.steps / cfg.update_every);

            let mut first = RareDriver::new(&g, &split, Backbone::Gcn, &cfg);
            for _ in 0..3 {
                assert!(first.step());
            }
            let snap = first.snapshot();
            assert!(snap.agent.params.is_empty(), "{} must export empty agent", kind.name());
            drop(first);
            let mut resumed = RareDriver::new_for_resume(&g, &split, Backbone::Gcn, &cfg);
            resumed.restore(&snap).unwrap();
            resumed.run_to_end();
            let report = resumed.finish();
            assert_reports_identical(&uninterrupted, &report);
        }
    }

    #[test]
    fn none_strategy_leaves_graph_untouched() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(41);
        cfg.rewirer = RewirerKind::None;
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        assert_eq!(report.optimized_graph.edge_vec(), g.edge_vec());
        assert_eq!(report.original_homophily, report.optimized_homophily);
    }

    #[test]
    fn dhgr_strategy_raises_homophily() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(43);
        cfg.rewirer = RewirerKind::Dhgr;
        cfg.steps = 24;
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        if report.optimized_graph.edge_vec() != g.edge_vec() {
            assert!(
                report.optimized_homophily >= report.original_homophily - 0.02,
                "homophily dropped: {} -> {}",
                report.original_homophily,
                report.optimized_homophily
            );
        }
    }

    #[test]
    fn restore_rejects_cross_strategy_snapshot() {
        let (g, split) = heterophilic_fixture();
        let cfg = GraphRareConfig::fast().with_seed(47);
        let mut ppo = RareDriver::new(&g, &split, Backbone::Gcn, &cfg);
        ppo.step();
        let snap = ppo.snapshot();
        let mut cfg2 = cfg;
        cfg2.rewirer = RewirerKind::Dhgr;
        let mut heuristic = RareDriver::new_for_resume(&g, &split, Backbone::Gcn, &cfg2);
        assert!(
            heuristic.restore(&snap).is_err(),
            "a DRL snapshot must not restore into a heuristic driver"
        );
    }

    #[test]
    fn restore_rejected_when_refresh_enabled() {
        let (g, split) = heterophilic_fixture();
        let mut cfg = GraphRareConfig::fast().with_seed(31);
        cfg.entropy_refresh_every = 2;
        let mut driver = RareDriver::new(&g, &split, Backbone::Gcn, &cfg);
        driver.step();
        let snap = driver.snapshot();
        let err = driver.restore(&snap).unwrap_err();
        assert!(err.contains("entropy_refresh_every"), "unexpected error: {err}");
    }
}
