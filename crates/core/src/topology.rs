//! The graph topology optimisation module (Sec. IV-B, Fig. 4).
//!
//! Given the base graph, the per-node entropy sequences and a
//! [`TopoState`], materialises the rewired graph `G_t`: for every node `v`
//! the `d_v` lowest-entropy original neighbours are removed and the top
//! `k_v` entropy candidates are connected.

use graphrare_entropy::EntropySequences;
use graphrare_graph::{edge_key, EdgeEdit, Graph};

use crate::fxmap::FxHashSet;
use crate::state::TopoState;

/// Which edit directions are enabled (Table V's add-only / remove-only
/// ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditMode {
    /// Add and remove edges (full GraphRARE).
    Both,
    /// Only add edges ("GCN-RARE-add").
    AddOnly,
    /// Only remove edges ("GCN-RARE-remove").
    RemoveOnly,
}

/// Rebuilds graph snapshots from states.
pub struct TopologyOptimizer {
    base: Graph,
    sequences: EntropySequences,
    mode: EditMode,
}

impl TopologyOptimizer {
    /// Creates an optimiser over `base` with precomputed sequences.
    pub fn new(base: Graph, sequences: EntropySequences, mode: EditMode) -> Self {
        assert_eq!(base.num_nodes(), sequences.len(), "sequence/node count mismatch");
        Self { base, sequences, mode }
    }

    /// The unmodified base graph.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The entropy sequences in use.
    pub fn sequences(&self) -> &EntropySequences {
        &self.sequences
    }

    /// The edit mode.
    pub fn mode(&self) -> EditMode {
        self.mode
    }

    /// Per-node `k` bounds implied by the sequences, capped at `cap` (and
    /// forced to 0 when additions are disabled).
    pub fn k_bounds(&self, cap: usize) -> Vec<u16> {
        (0..self.base.num_nodes())
            .map(|v| {
                if self.mode == EditMode::RemoveOnly {
                    0
                } else {
                    bound_u16(self.sequences.max_k(v), cap)
                }
            })
            .collect()
    }

    /// Per-node `d` bounds: never remove all of a node's neighbours (the
    /// paper observes that disconnecting nodes hurts message passing, so
    /// one neighbour is always kept), capped at `cap`.
    pub fn d_bounds(&self, cap: usize) -> Vec<u16> {
        (0..self.base.num_nodes())
            .map(|v| {
                if self.mode == EditMode::AddOnly {
                    0
                } else {
                    bound_u16(self.sequences.max_d(v).saturating_sub(1), cap)
                }
            })
            .collect()
    }

    /// Materialises `G_t` from a state: deletions first (from the ranked
    /// original neighbour lists), then additions (top-`k_v` candidates).
    ///
    /// Both passes are symmetric on an undirected graph: an edge is
    /// removed if *either* endpoint selects it for deletion, and added if
    /// either selects it for addition — additions win if both happen.
    pub fn materialize(&self, state: &TopoState) -> Graph {
        assert_eq!(state.num_nodes(), self.base.num_nodes(), "state size mismatch");
        let n = self.base.num_nodes();
        let mut edits: Vec<(usize, usize, EdgeEdit)> = Vec::new();
        if self.mode != EditMode::AddOnly {
            // Replay the sequential deletion pass on a degree array instead
            // of a live graph. A removal is skipped when it would isolate
            // either endpoint: the per-node `d` bounds guarantee this for
            // the ego node, but a neighbour's own deletions can otherwise
            // strip a node's last edge (the paper notes disconnection
            // cripples message passing). Deletion sequences list base
            // neighbours, so an edge can only be absent here because an
            // earlier iteration removed it — the `removed` set stands in
            // for that presence check.
            let mut deg: Vec<u32> = (0..n).map(|v| self.base.degree(v) as u32).collect();
            let mut removed: FxHashSet<u64> = FxHashSet::default();
            for v in 0..n {
                for &(u, _) in self.sequences.deletions(v).iter().take(state.d(v)) {
                    let u = u as usize;
                    if deg[v] > 1 && deg[u] > 1 && removed.insert(edge_key(v, u)) {
                        deg[v] -= 1;
                        deg[u] -= 1;
                        edits.push((v, u, EdgeEdit::Remove));
                    }
                }
            }
        }
        if self.mode != EditMode::RemoveOnly {
            // Additions come after every deletion in the edit list, so
            // `apply_edits`' last-edit-wins rule reproduces the sequential
            // "additions win" ordering.
            for v in 0..n {
                for &(u, _) in self.sequences.additions(v).iter().take(state.k(v)) {
                    edits.push((v, u as usize, EdgeEdit::Add));
                }
            }
        }
        let mut g = self.base.clone();
        g.apply_edits(&edits);
        g
    }
}

/// `min(len, cap)` as a `u16` counter bound, saturating at `u16::MAX`
/// instead of silently wrapping when a caller passes an oversized cap on a
/// node with a very long sequence (`as u16` truncation would otherwise turn
/// e.g. 65 536 into a bound of 0).
#[inline]
fn bound_u16(len: usize, cap: usize) -> u16 {
    u16::try_from(len.min(cap)).unwrap_or(u16::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_entropy::{
        EntropySequences, RelativeEntropyConfig, RelativeEntropyTable, SequenceConfig,
    };
    use graphrare_tensor::Matrix;

    fn setup(mode: EditMode) -> (TopologyOptimizer, TopoState) {
        // Path 0-1-2-3-4-5; features make far nodes {0,5} similar.
        let mut feats = Matrix::zeros(6, 2);
        for v in [0usize, 5] {
            feats.set(v, 0, 1.0);
        }
        for v in 1..5 {
            feats.set(v, 1, 1.0);
        }
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            feats,
            vec![0, 1, 1, 1, 1, 0],
            2,
        );
        let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let seqs = EntropySequences::build(
            &g,
            &table,
            &SequenceConfig {
                pool: graphrare_entropy::CandidatePool::RemoteRing { hops: 5 },
                max_additions: 8,
            },
        );
        let opt = TopologyOptimizer::new(g, seqs, mode);
        let state = TopoState::new(opt.k_bounds(8), opt.d_bounds(8));
        (opt, state)
    }

    #[test]
    fn zero_state_reproduces_base() {
        let (opt, state) = setup(EditMode::Both);
        let g = opt.materialize(&state);
        assert_eq!(g.edge_vec(), opt.base().edge_vec());
    }

    #[test]
    fn additions_follow_sequence_order() {
        let (opt, mut state) = setup(EditMode::Both);
        state.set_k(0, 1);
        let g = opt.materialize(&state);
        let top = opt.sequences().additions(0)[0].0 as usize;
        assert!(g.has_edge(0, top));
        assert_eq!(g.num_edges(), opt.base().num_edges() + 1);
    }

    #[test]
    fn deletions_remove_lowest_entropy_neighbors() {
        let (opt, mut state) = setup(EditMode::Both);
        // Node 2 has neighbours {1, 3}; d_max keeps at least one.
        state.set_d(2, 1);
        let g = opt.materialize(&state);
        assert_eq!(g.num_edges(), opt.base().num_edges() - 1);
        let removed = opt.sequences().deletions(2)[0].0 as usize;
        assert!(!g.has_edge(2, removed));
    }

    #[test]
    fn bounds_saturate_instead_of_wrapping() {
        // Sequence lengths (or caps) beyond u16::MAX must clamp, not wrap:
        // 65_536 as u16 is 0, which would freeze the node's counter at 0.
        assert_eq!(bound_u16(100_000, usize::MAX), u16::MAX);
        assert_eq!(bound_u16(u16::MAX as usize + 1, usize::MAX), u16::MAX);
        assert_eq!(bound_u16(100_000, 70_000), u16::MAX);
        // In-range values are untouched.
        assert_eq!(bound_u16(3, 10), 3);
        assert_eq!(bound_u16(12, 10), 10);
        assert_eq!(bound_u16(u16::MAX as usize, usize::MAX), u16::MAX);
        // And an oversized cap through the public API stays well-formed.
        let (opt, _) = setup(EditMode::Both);
        let k = opt.k_bounds(usize::MAX);
        let d = opt.d_bounds(usize::MAX);
        for v in 0..opt.base().num_nodes() {
            assert_eq!(k[v] as usize, opt.sequences().max_k(v));
            assert_eq!(d[v] as usize, opt.sequences().max_d(v).saturating_sub(1));
        }
    }

    #[test]
    fn d_bounds_keep_one_neighbor() {
        let (opt, _) = setup(EditMode::Both);
        let bounds = opt.d_bounds(10);
        for (v, &bound) in bounds.iter().enumerate() {
            assert!(
                (bound as usize) < opt.base().degree(v).max(1),
                "node {v} may be fully disconnected"
            );
        }
    }

    #[test]
    fn add_only_mode_never_removes() {
        let (opt, mut state) = setup(EditMode::AddOnly);
        assert!(opt.d_bounds(8).iter().all(|&b| b == 0));
        state.set_k(0, 2);
        let g = opt.materialize(&state);
        for (u, v) in opt.base().edge_vec() {
            assert!(g.has_edge(u, v), "edge ({u},{v}) was removed in AddOnly mode");
        }
    }

    #[test]
    fn remove_only_mode_never_adds() {
        let (opt, mut state) = setup(EditMode::RemoveOnly);
        assert!(opt.k_bounds(8).iter().all(|&b| b == 0));
        state.set_d(2, 1);
        let g = opt.materialize(&state);
        assert!(g.num_edges() < opt.base().num_edges());
        for (u, v) in g.edge_vec() {
            assert!(opt.base().has_edge(u, v), "new edge ({u},{v}) in RemoveOnly mode");
        }
    }

    #[test]
    fn materialize_is_pure() {
        let (opt, mut state) = setup(EditMode::Both);
        state.set_k(0, 1);
        let a = opt.materialize(&state);
        let b = opt.materialize(&state);
        assert_eq!(a.edge_vec(), b.edge_vec());
        // Base untouched.
        assert_eq!(opt.base().num_edges(), 5);
    }
}
