//! Checkpoint and model-artifact files.
//!
//! This module maps the plain-data [`DriverSnapshot`] and the final
//! [`RareReport`] onto `graphrare-store` containers and back:
//!
//! * **Checkpoints** (`save_checkpoint` / `load_snapshot` /
//!   [`resume_driver`]) carry every mutable piece of the Algorithm-1
//!   loop. A run killed between steps and resumed from its last
//!   checkpoint produces a final report **bit-identical** to an
//!   uninterrupted run — floats travel as raw IEEE-754 bits and both
//!   RNG streams resume mid-sequence.
//! * **Model artifacts** (`save_model` / `load_model`) carry the
//!   best-validation parameters and optimised topology of a finished
//!   run, enough to re-evaluate the model without retraining.
//!
//! Every load validates magic, version, CRCs (in the store layer) and
//! then cross-checks the artifact against the config/graph it is being
//! restored into; all failures are typed [`StoreError`]s, never panics.

use std::path::Path;

use graphrare_datasets::Split;
use graphrare_gnn::{Backbone, Trainer, TrainerState};
use graphrare_graph::Graph;
use graphrare_rl::{AgentState, PpoStats, RolloutBuffer};
use graphrare_store::{Container, ContainerWriter, StoreError, TopologyRecord};
use graphrare_telemetry as telemetry;
use graphrare_tensor::Matrix;

use crate::config::GraphRareConfig;
use crate::driver::{DriverSnapshot, RareDriver, RareReport, RunTraces};
use crate::reward::PerfSnapshot;

/// `kind` section contents of a checkpoint container.
const CHECKPOINT_KIND: &[u8] = b"graphrare.checkpoint.v1";
/// `kind` section contents of a model-artifact container.
const MODEL_KIND: &[u8] = b"graphrare.model.v1";

fn named(params: &[Matrix]) -> Vec<(String, Matrix)> {
    params.iter().enumerate().map(|(i, m)| (format!("p{i}"), m.clone())).collect()
}

fn unnamed(params: Vec<(String, Matrix)>) -> Vec<Matrix> {
    params.into_iter().map(|(_, m)| m).collect()
}

fn expect_kind(c: &Container, expected: &[u8]) -> Result<(), StoreError> {
    let found = c.bytes("kind")?;
    if found != expected {
        return Err(StoreError::Mismatch {
            context: format!(
                "artifact kind is {:?}, expected {:?}",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(expected)
            ),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Writes a checkpoint of `driver`'s current loop state to `path`
/// (atomically — a crash mid-write leaves any previous file intact).
/// Returns the number of bytes written.
pub fn save_checkpoint(path: &Path, driver: &RareDriver) -> Result<u64, StoreError> {
    let clock = telemetry::Stopwatch::start();
    let snap = driver.snapshot();
    let cfg = driver.config();

    let mut w = ContainerWriter::new();
    w.put_bytes("kind", CHECKPOINT_KIND);
    w.put_u64_vec(
        "meta",
        &[
            snap.step,
            cfg.steps as u64,
            cfg.update_every as u64,
            cfg.seed,
            snap.topo_k.len() as u64,
            snap.window_steps,
        ],
    );
    w.put_scalars(
        "floats",
        &[
            ("prev.accuracy".into(), snap.prev.accuracy),
            ("prev.loss".into(), snap.prev.loss),
            ("prev.auc".into(), snap.prev.auc),
            ("max_acc".into(), snap.max_acc),
            ("best_val".into(), snap.best_val),
            ("window_reward".into(), snap.window_reward as f64),
        ],
    );

    w.put_param_set("trainer/params", &named(&snap.trainer.params));
    w.put_adam("trainer/adam", &snap.trainer.adam);
    w.put_rng("trainer/rng", snap.trainer.rng);
    w.put_param_set("agent/params", &named(&snap.agent.params));
    w.put_adam("agent/adam", &snap.agent.adam);
    w.put_rng("agent/rng", snap.agent.rng);
    w.put_param_set("warm/params", &named(&snap.warm_params));
    w.put_param_set("best/params", &named(&snap.best_params));

    w.put_topology(
        "best/graph",
        &TopologyRecord {
            n: snap.topo_k.len() as u32,
            num_classes: driver.num_classes() as u32,
            edges: snap.best_graph_edges.clone(),
        },
    );
    w.put_u16_vec("topo/k", &snap.topo_k);
    w.put_u16_vec("topo/d", &snap.topo_d);
    w.put_u16_vec("topo/kmax", &snap.topo_k_max);
    w.put_u16_vec("topo/dmax", &snap.topo_d_max);

    // The rollout buffer: states are uniform 2n-wide rows, so they pack
    // into one matrix; actions/dones pack into raw bytes.
    let n2 = 2 * snap.topo_k.len();
    let rows = snap.buffer.states.len();
    let states = Matrix::from_vec(rows, n2, snap.buffer.states.concat());
    w.put_matrix("buffer/states", &states);
    w.put_bytes("buffer/actions", &snap.buffer.actions.concat());
    w.put_f32_vec("buffer/logp", &snap.buffer.log_probs);
    w.put_f32_vec("buffer/values", &snap.buffer.values);
    w.put_f32_vec("buffer/rewards", &snap.buffer.rewards);
    let dones: Vec<u8> = snap.buffer.dones.iter().map(|&d| d as u8).collect();
    w.put_bytes("buffer/dones", &dones);

    w.put_f64_vec("traces/train_acc", &snap.traces.train_acc);
    w.put_f64_vec("traces/val_acc", &snap.traces.val_acc);
    w.put_f64_vec("traces/homophily", &snap.traces.homophily);
    w.put_f32_vec("traces/episode_rewards", &snap.traces.episode_rewards);
    let ppo_flat: Vec<f32> = snap
        .traces
        .ppo_stats
        .iter()
        .flat_map(|s| [s.policy_loss, s.value_loss, s.entropy, s.approx_kl])
        .collect();
    w.put_f32_vec("traces/ppo", &ppo_flat);

    let bytes = w.write_atomic(path)?;
    telemetry::emit_with(|| {
        telemetry::Event::new("checkpoint.save")
            .u64("step", snap.step)
            .u64("bytes", bytes)
            .u64("wall_ns", clock.ns())
            .str("path", path.display().to_string())
    });
    Ok(bytes)
}

/// Reads a checkpoint written by [`save_checkpoint`] and cross-checks it
/// against `cfg` (step budget, update window, seed). The returned
/// snapshot still has to pass [`RareDriver::restore`]'s structural
/// validation — [`resume_driver`] bundles both.
pub fn load_snapshot(path: &Path, cfg: &GraphRareConfig) -> Result<DriverSnapshot, StoreError> {
    let clock = telemetry::Stopwatch::start();
    let c = Container::read(path)?;
    expect_kind(&c, CHECKPOINT_KIND)?;

    let meta = c.u64_vec("meta")?;
    let [step, steps, update_every, seed, _num_nodes, window_steps] = meta[..] else {
        return Err(StoreError::Corrupt {
            context: format!("checkpoint meta has {} entries, expected 6", meta.len()),
        });
    };
    if steps != cfg.steps as u64 || update_every != cfg.update_every as u64 || seed != cfg.seed {
        return Err(StoreError::Mismatch {
            context: format!(
                "checkpoint was taken with steps={steps} update-every={update_every} \
                 seed={seed}, current config has steps={} update-every={} seed={}",
                cfg.steps, cfg.update_every, cfg.seed
            ),
        });
    }

    let prev = PerfSnapshot {
        accuracy: c.scalar("floats", "prev.accuracy")?,
        loss: c.scalar("floats", "prev.loss")?,
        auc: c.scalar("floats", "prev.auc")?,
    };

    let trainer = TrainerState {
        params: unnamed(c.param_set("trainer/params")?),
        adam: c.adam("trainer/adam")?,
        rng: c.rng("trainer/rng")?,
    };
    let agent = AgentState {
        params: unnamed(c.param_set("agent/params")?),
        adam: c.adam("agent/adam")?,
        rng: c.rng("agent/rng")?,
    };

    let best_graph = c.topology("best/graph")?;

    let buffer = decode_buffer(&c)?;
    let traces = decode_traces(&c)?;

    let snap = DriverSnapshot {
        step,
        trainer,
        agent,
        topo_k: c.u16_vec("topo/k")?,
        topo_d: c.u16_vec("topo/d")?,
        topo_k_max: c.u16_vec("topo/kmax")?,
        topo_d_max: c.u16_vec("topo/dmax")?,
        prev,
        max_acc: c.scalar("floats", "max_acc")?,
        best_val: c.scalar("floats", "best_val")?,
        warm_params: unnamed(c.param_set("warm/params")?),
        best_params: unnamed(c.param_set("best/params")?),
        best_graph_edges: best_graph.edges,
        buffer,
        traces,
        window_reward: c.scalar("floats", "window_reward")? as f32,
        window_steps,
    };
    telemetry::emit_with(|| {
        telemetry::Event::new("checkpoint.load")
            .u64("step", snap.step)
            .u64("wall_ns", clock.ns())
            .str("path", path.display().to_string())
    });
    Ok(snap)
}

fn decode_buffer(c: &Container) -> Result<RolloutBuffer, StoreError> {
    let states = c.matrix("buffer/states")?;
    let (rows, cols) = states.shape();
    let states: Vec<Vec<f32>> =
        (0..rows).map(|r| states.as_slice()[r * cols..(r + 1) * cols].to_vec()).collect();
    let actions_flat = c.bytes("buffer/actions")?;
    if actions_flat.len() != rows * cols {
        return Err(StoreError::Corrupt {
            context: format!(
                "buffer actions hold {} entries, states imply {}",
                actions_flat.len(),
                rows * cols
            ),
        });
    }
    let actions: Vec<Vec<u8>> =
        (0..rows).map(|r| actions_flat[r * cols..(r + 1) * cols].to_vec()).collect();
    let dones_raw = c.bytes("buffer/dones")?;
    if let Some(&bad) = dones_raw.iter().find(|&&b| b > 1) {
        return Err(StoreError::Corrupt {
            context: format!("buffer dones contain non-boolean byte {bad}"),
        });
    }
    let buffer = RolloutBuffer {
        states,
        actions,
        log_probs: c.f32_vec("buffer/logp")?,
        values: c.f32_vec("buffer/values")?,
        rewards: c.f32_vec("buffer/rewards")?,
        dones: dones_raw.iter().map(|&b| b == 1).collect(),
    };
    if buffer.log_probs.len() != rows
        || buffer.values.len() != rows
        || buffer.rewards.len() != rows
        || buffer.dones.len() != rows
    {
        return Err(StoreError::Corrupt {
            context: "buffer columns disagree in length".to_string(),
        });
    }
    Ok(buffer)
}

fn decode_traces(c: &Container) -> Result<RunTraces, StoreError> {
    let ppo_flat = c.f32_vec("traces/ppo")?;
    if ppo_flat.len() % 4 != 0 {
        return Err(StoreError::Corrupt {
            context: format!("ppo trace length {} is not a multiple of 4", ppo_flat.len()),
        });
    }
    let ppo_stats = ppo_flat
        .chunks_exact(4)
        .map(|c| PpoStats { policy_loss: c[0], value_loss: c[1], entropy: c[2], approx_kl: c[3] })
        .collect();
    Ok(RunTraces {
        train_acc: c.f64_vec("traces/train_acc")?,
        val_acc: c.f64_vec("traces/val_acc")?,
        homophily: c.f64_vec("traces/homophily")?,
        episode_rewards: c.f32_vec("traces/episode_rewards")?,
        ppo_stats,
    })
}

/// Loads a checkpoint and builds a driver ready to continue from it:
/// [`RareDriver::new_for_resume`] (which skips warm-up) followed by a
/// fully validated [`RareDriver::restore`].
pub fn resume_driver(
    path: &Path,
    graph: &Graph,
    split: &Split,
    backbone: Backbone,
    cfg: &GraphRareConfig,
) -> Result<RareDriver, StoreError> {
    let snap = load_snapshot(path, cfg)?;
    if snap.topo_k.len() != graph.num_nodes() {
        return Err(StoreError::Mismatch {
            context: format!(
                "checkpoint covers {} nodes, graph has {}",
                snap.topo_k.len(),
                graph.num_nodes()
            ),
        });
    }
    let mut driver = RareDriver::new_for_resume(graph, split, backbone, cfg);
    driver.restore(&snap).map_err(|context| StoreError::Mismatch { context })?;
    Ok(driver)
}

// ---------------------------------------------------------------------------
// Model artifacts
// ---------------------------------------------------------------------------

/// A trained GraphRARE model as loaded from disk: the best-validation
/// parameters, the optimised topology and the headline metrics.
#[derive(Clone, Debug)]
pub struct ModelArtifact {
    /// Backbone name (`"GCN"`, `"GAT"`, ...).
    pub backbone: String,
    /// Model parameters at the best-validation checkpoint.
    pub params: Vec<Matrix>,
    /// Optimised topology (features/labels come from the base graph).
    pub topology: TopologyRecord,
    /// Test accuracy recorded at save time.
    pub test_acc: f64,
    /// Best validation accuracy recorded at save time.
    pub best_val_acc: f64,
    /// Homophily of the original graph.
    pub original_homophily: f64,
    /// Homophily of the optimised graph.
    pub optimized_homophily: f64,
}

/// Persists a finished run's model (best-validation parameters +
/// optimised topology + metrics) to `path`. Returns bytes written.
pub fn save_model(path: &Path, report: &RareReport) -> Result<u64, StoreError> {
    let mut w = ContainerWriter::new();
    w.put_bytes("kind", MODEL_KIND);
    w.put_bytes("backbone", report.backbone.as_bytes());
    w.put_param_set("model/params", &named(&report.model_params));
    w.put_topology("graph", &TopologyRecord::from_graph(&report.optimized_graph));
    w.put_scalars(
        "metrics",
        &[
            ("test_acc".into(), report.test_acc),
            ("best_val_acc".into(), report.best_val_acc),
            ("original_homophily".into(), report.original_homophily),
            ("optimized_homophily".into(), report.optimized_homophily),
        ],
    );
    w.write_atomic(path)
}

/// Reads a model artifact written by [`save_model`].
pub fn load_model(path: &Path) -> Result<ModelArtifact, StoreError> {
    let c = Container::read(path)?;
    expect_kind(&c, MODEL_KIND)?;
    let backbone = String::from_utf8(c.bytes("backbone")?.to_vec()).map_err(|_| {
        StoreError::Corrupt { context: "backbone name is not valid utf-8".to_string() }
    })?;
    Ok(ModelArtifact {
        backbone,
        params: unnamed(c.param_set("model/params")?),
        topology: c.topology("graph")?,
        test_acc: c.scalar("metrics", "test_acc")?,
        best_val_acc: c.scalar("metrics", "best_val_acc")?,
        original_homophily: c.scalar("metrics", "original_homophily")?,
        optimized_homophily: c.scalar("metrics", "optimized_homophily")?,
    })
}

/// Restores saved parameters into a trainer after validating shapes —
/// the typed-error counterpart of [`Trainer::restore`], which panics on
/// mismatch.
pub fn apply_model_params(trainer: &Trainer, params: &[Matrix]) -> Result<(), StoreError> {
    let cur = trainer.snapshot();
    if cur.len() != params.len() {
        return Err(StoreError::Mismatch {
            context: format!(
                "artifact has {} parameter tensors, model expects {}",
                params.len(),
                cur.len()
            ),
        });
    }
    for (i, (p, c)) in params.iter().zip(&cur).enumerate() {
        if p.shape() != c.shape() {
            return Err(StoreError::Mismatch {
                context: format!(
                    "artifact parameter {i} is {:?}, model expects {:?}",
                    p.shape(),
                    c.shape()
                ),
            });
        }
    }
    trainer.restore(params);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run;
    use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};
    use graphrare_gnn::{build_model, evaluate, GraphTensors};

    fn fixture() -> (Graph, Split) {
        let spec = DatasetSpec {
            name: "persist-test",
            num_nodes: 50,
            num_edges: 110,
            feat_dim: 16,
            num_classes: 3,
            homophily: 0.2,
            degree_exponent: 0.4,
            feature_signal: 0.8,
            feature_density: 0.05,
        };
        let g = generate_spec(&spec, 9);
        let split = stratified_split(g.labels(), g.num_classes(), 0);
        (g, split)
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join(format!("grr-persist-{tag}-{}", std::process::id()))
            .join("file.grrs")
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identically() {
        let (g, split) = fixture();
        let cfg = GraphRareConfig::fast().with_seed(23);
        let uninterrupted = run(&g, &split, Backbone::Gcn, &cfg);

        let mut driver = RareDriver::new(&g, &split, Backbone::Gcn, &cfg);
        for _ in 0..2 {
            driver.step();
        }
        let path = temp_path("ckpt");
        save_checkpoint(&path, &driver).unwrap();
        drop(driver);

        let mut resumed = resume_driver(&path, &g, &split, Backbone::Gcn, &cfg).unwrap();
        assert_eq!(resumed.step_index(), 2);
        resumed.run_to_end();
        let report = resumed.finish();
        assert_eq!(report.test_acc.to_bits(), uninterrupted.test_acc.to_bits());
        assert_eq!(report.traces.train_acc, uninterrupted.traces.train_acc);
        assert_eq!(report.traces.episode_rewards, uninterrupted.traces.episode_rewards);
        assert_eq!(report.optimized_graph.edge_vec(), uninterrupted.optimized_graph.edge_vec());
        assert_eq!(report.model_params, uninterrupted.model_params);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn load_rejects_config_mismatch() {
        let (g, split) = fixture();
        let cfg = GraphRareConfig::fast().with_seed(29);
        let mut driver = RareDriver::new(&g, &split, Backbone::Gcn, &cfg);
        driver.step();
        let path = temp_path("cfg-mismatch");
        save_checkpoint(&path, &driver).unwrap();

        let other = GraphRareConfig::fast().with_seed(31);
        assert!(matches!(load_snapshot(&path, &other), Err(StoreError::Mismatch { .. })));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn model_artifact_reproduces_saved_test_accuracy() {
        let (g, split) = fixture();
        let cfg = GraphRareConfig::fast().with_seed(37);
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        let path = temp_path("model");
        save_model(&path, &report).unwrap();

        let artifact = load_model(&path).unwrap();
        assert_eq!(artifact.backbone, report.backbone);
        assert_eq!(artifact.test_acc.to_bits(), report.test_acc.to_bits());

        // Rebuild the model and graph and confirm the stored parameters
        // really evaluate to the stored test accuracy.
        let opt_graph = artifact.topology.to_graph(&g).unwrap();
        let model = build_model(Backbone::Gcn, g.feat_dim(), g.num_classes(), &cfg.model);
        let trainer = Trainer::new(model.as_ref(), &cfg.train);
        apply_model_params(&trainer, &artifact.params).unwrap();
        let eval =
            evaluate(model.as_ref(), &GraphTensors::new(&opt_graph), g.labels(), &split.test);
        assert_eq!(eval.accuracy.to_bits(), report.test_acc.to_bits());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn model_file_is_not_a_checkpoint() {
        let (g, split) = fixture();
        let cfg = GraphRareConfig::fast().with_seed(41);
        let report = run(&g, &split, Backbone::Gcn, &cfg);
        let path = temp_path("kind");
        save_model(&path, &report).unwrap();
        assert!(matches!(
            load_snapshot(&path, &cfg),
            Err(StoreError::Mismatch { .. }) | Err(StoreError::MissingSection { .. })
        ));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
