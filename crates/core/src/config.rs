//! Configuration of the full GraphRARE framework.

use graphrare_entropy::{RelativeEntropyConfig, SequenceConfig};
use graphrare_gnn::{ModelConfig, TrainConfig};
use graphrare_rl::PpoConfig;

use crate::reward::RewardKind;
use crate::rewirer::RewirerKind;
use crate::topology::EditMode;

/// How the per-node candidate rankings are ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SequenceMode {
    /// Rank by node relative entropy (the real framework).
    Entropy,
    /// Randomly shuffle each node's ranking (the "GCN-RA" ablation:
    /// GraphRARE without relative entropy).
    Shuffled {
        /// Shuffle seed.
        seed: u64,
    },
}

/// Which reinforcement-learning algorithm updates the policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RlAlgo {
    /// Proximal Policy Optimization (the paper's choice).
    Ppo,
    /// Advantage actor-critic — exercises the paper's remark that "other
    /// reinforcement learning algorithms can also be conveniently
    /// applied" (Sec. IV-B); compared in the `repro_ablation_rl` bench.
    A2c,
}

/// Which policy parameterisation drives the MDP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// MLP over the whole `2N` state (the paper's configuration).
    Global {
        /// Hidden width.
        hidden: usize,
    },
    /// Weight-shared per-node MLP (scales to large `N`).
    Shared {
        /// Hidden width.
        hidden: usize,
    },
}

/// Full configuration of one GraphRARE run.
#[derive(Clone, Copy, Debug)]
pub struct GraphRareConfig {
    /// Relative-entropy computation (λ, embedding, normaliser).
    pub entropy: RelativeEntropyConfig,
    /// Candidate-pool and ranking construction.
    pub sequences: SequenceConfig,
    /// Backbone hyper-parameters.
    pub model: ModelConfig,
    /// GNN optimisation hyper-parameters.
    pub train: TrainConfig,
    /// PPO hyper-parameters.
    pub ppo: PpoConfig,
    /// Reward function (Eq. 11 or the AUC ablation).
    pub reward: RewardKind,
    /// Edit directions enabled.
    pub edit_mode: EditMode,
    /// Entropy vs shuffled rankings.
    pub sequence_mode: SequenceMode,
    /// Policy parameterisation.
    pub policy: PolicyKind,
    /// RL algorithm (PPO per the paper, or A2C).
    pub algo: RlAlgo,
    /// Which strategy proposes the per-step topology edits: the paper's
    /// DRL module (default), one of the deterministic heuristic
    /// baselines, or no rewiring at all (see
    /// [`RewirerKind`](crate::rewirer::RewirerKind)).
    pub rewirer: RewirerKind,
    /// Total DRL steps (graph rewiring iterations).
    pub steps: usize,
    /// PPO update cadence, and the "episode" length reported in traces.
    pub update_every: usize,
    /// Reset the state to `S_0` after each update window (strict
    /// finite-horizon episodes). Off by default: the optimisation
    /// continues from the current topology, which is what the paper's
    /// smooth homophily curves (Fig. 6b) show.
    pub reset_each_episode: bool,
    /// Cap on GNN warm-up epochs on the original graph before the DRL
    /// loop (early-stopped on validation accuracy).
    pub warmup_epochs: usize,
    /// Fine-tune epochs whenever a topology improves training accuracy
    /// (Algorithm 1, line 12).
    pub finetune_epochs: usize,
    /// Per-node cap on both `k` and `d`.
    pub k_cap: usize,
    /// Refresh the entropy sequences against the *current* rewired graph
    /// every this many DRL steps, via the incremental entropy engine
    /// (`graphrare_entropy::IncrementalEntropy`). `0` (the default)
    /// keeps the paper's semantics: sequences are computed once on the
    /// original graph and stay frozen for the whole run. When enabled,
    /// each refresh re-anchors the topology optimiser on the current
    /// graph and resets the DRL counters (see `RareDriver`), so results
    /// differ from the frozen-sequence run by design; snapshot/resume is
    /// rejected in this mode.
    pub entropy_refresh_every: usize,
    /// Master seed (PPO exploration noise etc. derive from sub-seeds).
    pub seed: u64,
    /// Worker threads for the tensor/entropy kernels
    /// ([`graphrare_tensor::parallel`]). `0` (the default) resolves from
    /// the `GRAPHRARE_THREADS` environment variable, falling back to the
    /// machine's available parallelism; `1` forces exact serial
    /// execution. Results are bit-identical for any value.
    pub threads: usize,
}

impl Default for GraphRareConfig {
    fn default() -> Self {
        Self {
            entropy: RelativeEntropyConfig::default(),
            sequences: SequenceConfig::default(),
            model: ModelConfig::default(),
            train: TrainConfig::default(),
            ppo: PpoConfig::default(),
            reward: RewardKind::default(),
            edit_mode: EditMode::Both,
            sequence_mode: SequenceMode::Entropy,
            policy: PolicyKind::Global { hidden: 64 },
            algo: RlAlgo::Ppo,
            rewirer: RewirerKind::Ppo,
            steps: 160,
            update_every: 10,
            reset_each_episode: false,
            warmup_epochs: 40,
            finetune_epochs: 5,
            k_cap: 10,
            entropy_refresh_every: 0,
            seed: 0,
            threads: 0,
        }
    }
}

impl GraphRareConfig {
    /// A reduced-budget configuration for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            steps: 12,
            update_every: 4,
            warmup_epochs: 15,
            finetune_epochs: 3,
            k_cap: 6,
            ..Default::default()
        }
    }

    /// Derives a copy with every stochastic component reseeded from
    /// `seed` (model init, dropout, PPO, shuffles).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.model.seed = seed.wrapping_mul(0x9e37_79b9).wrapping_add(1);
        self.train.seed = seed.wrapping_mul(0x9e37_79b9).wrapping_add(2);
        self.ppo.seed = seed.wrapping_mul(0x9e37_79b9).wrapping_add(3);
        if let SequenceMode::Shuffled { seed: s } = &mut self.sequence_mode {
            *s = seed.wrapping_mul(0x9e37_79b9).wrapping_add(4);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GraphRareConfig::default();
        assert!(c.steps >= c.update_every);
        assert!(c.k_cap > 0);
        assert_eq!(c.edit_mode, EditMode::Both);
        assert_eq!(c.sequence_mode, SequenceMode::Entropy);
    }

    #[test]
    fn with_seed_reseeds_components() {
        let a = GraphRareConfig::default().with_seed(1);
        let b = GraphRareConfig::default().with_seed(2);
        assert_ne!(a.model.seed, b.model.seed);
        assert_ne!(a.ppo.seed, b.ppo.seed);
        assert_ne!(a.model.seed, a.ppo.seed);
    }

    #[test]
    fn fast_is_cheaper_than_default() {
        let f = GraphRareConfig::fast();
        let d = GraphRareConfig::default();
        assert!(f.steps < d.steps);
        assert!(f.warmup_epochs < d.warmup_epochs);
    }
}
