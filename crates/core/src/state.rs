//! The MDP state `S = [k_1..k_N, d_1..d_N]` (Sec. IV-B).
//!
//! Each node carries two counters: `k_v` — how many of its top entropy
//! candidates are connected — and `d_v` — how many of its lowest-entropy
//! original neighbours are removed. Actions move each counter by
//! `{−1, 0, +1}` (the paper's Δk = 1), clamped to the per-node feasible
//! range.

use graphrare_rl::ACTION_ARITY;

/// Per-node topology counters with per-node bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopoState {
    k: Vec<u16>,
    d: Vec<u16>,
    k_max: Vec<u16>,
    d_max: Vec<u16>,
}

impl TopoState {
    /// Creates the all-zero initial state `S_0` with the given per-node
    /// bounds (usually the entropy-sequence lengths, possibly capped).
    pub fn new(k_max: Vec<u16>, d_max: Vec<u16>) -> Self {
        assert_eq!(k_max.len(), d_max.len(), "bound vectors must have equal length");
        let n = k_max.len();
        Self { k: vec![0; n], d: vec![0; n], k_max, d_max }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.k.len()
    }

    /// Whether the state covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
    }

    /// `k_v`: edges added for node `v`.
    pub fn k(&self, v: usize) -> usize {
        self.k[v] as usize
    }

    /// `d_v`: edges deleted for node `v`.
    pub fn d(&self, v: usize) -> usize {
        self.d[v] as usize
    }

    /// Upper bound of `k_v`.
    pub fn k_max(&self, v: usize) -> usize {
        self.k_max[v] as usize
    }

    /// Upper bound of `d_v`.
    pub fn d_max(&self, v: usize) -> usize {
        self.d_max[v] as usize
    }

    /// Sets `k_v` directly (clamped); used by the fixed/random ablations.
    pub fn set_k(&mut self, v: usize, k: usize) {
        self.k[v] = (k as u16).min(self.k_max[v]);
    }

    /// Sets `d_v` directly (clamped).
    pub fn set_d(&mut self, v: usize, d: usize) {
        self.d[v] = (d as u16).min(self.d_max[v]);
    }

    /// Resets to `S_0 = [0, 0, …]`.
    pub fn reset(&mut self) {
        self.k.iter_mut().for_each(|v| *v = 0);
        self.d.iter_mut().for_each(|v| *v = 0);
    }

    /// Applies a multi-discrete action (Eq. 10: `S_{t+1} = S_t + A_t`).
    ///
    /// `actions` holds one index per head in node-interleaved layout: head
    /// `2v` adjusts `k_v`, head `2v+1` adjusts `d_v`; index 0 decrements,
    /// 1 keeps, 2 increments. Out-of-range moves saturate.
    pub fn apply(&mut self, actions: &[u8]) {
        assert_eq!(actions.len(), 2 * self.k.len(), "action length mismatch");
        for v in 0..self.k.len() {
            self.k[v] = step(self.k[v], actions[2 * v], self.k_max[v]);
            self.d[v] = step(self.d[v], actions[2 * v + 1], self.d_max[v]);
        }
    }

    /// Policy-network features: node-interleaved `(k_v / k_max_v,
    /// d_v / d_max_v)` pairs, so the layout matches both
    /// [`GlobalPolicy`](graphrare_rl::GlobalPolicy) (as one flat vector)
    /// and [`SharedPolicy`](graphrare_rl::SharedPolicy) (two features per
    /// node).
    pub fn features(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(2 * self.k.len());
        for v in 0..self.k.len() {
            out.push(normalized(self.k[v], self.k_max[v]));
            out.push(normalized(self.d[v], self.d_max[v]));
        }
        out
    }

    /// Raw `k` counters (checkpoint capture).
    pub fn k_vec(&self) -> &[u16] {
        &self.k
    }

    /// Raw `d` counters (checkpoint capture).
    pub fn d_vec(&self) -> &[u16] {
        &self.d
    }

    /// Raw per-node `k` bounds (checkpoint capture).
    pub fn k_max_vec(&self) -> &[u16] {
        &self.k_max
    }

    /// Raw per-node `d` bounds (checkpoint capture).
    pub fn d_max_vec(&self) -> &[u16] {
        &self.d_max
    }

    /// Rebuilds a state from raw vectors captured by the accessors above
    /// (checkpoint restore). Returns `None` if the vectors disagree in
    /// length or a counter exceeds its bound.
    pub fn from_raw(k: Vec<u16>, d: Vec<u16>, k_max: Vec<u16>, d_max: Vec<u16>) -> Option<Self> {
        let n = k.len();
        if d.len() != n || k_max.len() != n || d_max.len() != n {
            return None;
        }
        if k.iter().zip(&k_max).any(|(v, m)| v > m) || d.iter().zip(&d_max).any(|(v, m)| v > m) {
            return None;
        }
        Some(Self { k, d, k_max, d_max })
    }

    /// Total number of added edges implied by the state.
    pub fn total_k(&self) -> usize {
        self.k.iter().map(|&v| v as usize).sum()
    }

    /// Total number of deleted edges implied by the state.
    pub fn total_d(&self) -> usize {
        self.d.iter().map(|&v| v as usize).sum()
    }
}

#[inline]
fn step(current: u16, action: u8, max: u16) -> u16 {
    debug_assert!((action as usize) < ACTION_ARITY);
    match action {
        0 => current.saturating_sub(1),
        1 => current,
        _ => (current + 1).min(max),
    }
}

#[inline]
fn normalized(value: u16, max: u16) -> f32 {
    if max == 0 {
        0.0
    } else {
        value as f32 / max as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> TopoState {
        TopoState::new(vec![3, 0, 2], vec![1, 2, 0])
    }

    #[test]
    fn initial_state_is_zero() {
        let s = state();
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.total_k(), 0);
        assert_eq!(s.total_d(), 0);
        assert_eq!(s.features(), vec![0.0; 6]);
    }

    #[test]
    fn apply_increments_and_saturates_at_max() {
        let mut s = state();
        // Increment every head thrice.
        for _ in 0..3 {
            s.apply(&[2, 2, 2, 2, 2, 2]);
        }
        assert_eq!(s.k(0), 3);
        assert_eq!(s.k(1), 0, "k_max = 0 must stay 0");
        assert_eq!(s.k(2), 2);
        assert_eq!(s.d(0), 1);
        assert_eq!(s.d(1), 2);
        assert_eq!(s.d(2), 0);
    }

    #[test]
    fn apply_decrement_saturates_at_zero() {
        let mut s = state();
        s.apply(&[0, 0, 0, 0, 0, 0]);
        assert_eq!(s.total_k() + s.total_d(), 0);
    }

    #[test]
    fn keep_action_is_identity() {
        let mut s = state();
        s.apply(&[2, 2, 2, 2, 2, 2]);
        let before = s.clone();
        s.apply(&[1, 1, 1, 1, 1, 1]);
        assert_eq!(s, before);
    }

    #[test]
    fn features_are_normalized() {
        let mut s = state();
        s.apply(&[2, 2, 2, 2, 2, 2]);
        let f = s.features();
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(f[2], 0.0, "max 0 node stays 0");
        assert!((f[1] - 1.0).abs() < 1e-6);
        assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn reset_clears_counters() {
        let mut s = state();
        s.apply(&[2, 2, 2, 2, 2, 2]);
        s.reset();
        assert_eq!(s.total_k(), 0);
        assert_eq!(s.total_d(), 0);
    }

    #[test]
    fn raw_roundtrip_preserves_state() {
        let mut s = state();
        s.apply(&[2, 2, 2, 2, 2, 2]);
        let back = TopoState::from_raw(
            s.k_vec().to_vec(),
            s.d_vec().to_vec(),
            s.k_max_vec().to_vec(),
            s.d_max_vec().to_vec(),
        )
        .unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn from_raw_rejects_inconsistent_vectors() {
        assert!(TopoState::from_raw(vec![1], vec![0, 0], vec![2], vec![1]).is_none());
        assert!(TopoState::from_raw(vec![5], vec![0], vec![2], vec![1]).is_none(), "k > k_max");
    }

    #[test]
    fn set_k_clamps() {
        let mut s = state();
        s.set_k(0, 99);
        assert_eq!(s.k(0), 3);
        s.set_d(1, 1);
        assert_eq!(s.d(1), 1);
    }
}
