//! Multiply-rotate hashing for the rewiring hot path.
//!
//! The incremental engine keeps several `HashMap`s / `HashSet`s keyed by
//! packed `u64` edge keys and node indices, and touches them thousands of
//! times per rewiring step. `std`'s default SipHash is DoS-resistant but
//! slow for 8-byte keys; these tables are process-internal (never fed
//! attacker-controlled keys), so a Fx-style multiply-rotate hash is the
//! right trade. The hasher is deterministic, which also keeps replay and
//! resume behaviour reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (a 64-bit
/// truncation of pi's hex expansion times 2^62).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word multiply-rotate hasher (the rustc "FxHasher" recipe).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_instances() {
        let build = FxBuildHasher::default();
        let a = build.hash_one(0xdead_beef_u64);
        let b = FxBuildHasher::default().hash_one(0xdead_beef_u64);
        assert_eq!(a, b);
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k * k, k as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * k)), Some(&(k as u32)));
        }
        let mut s: FxHashSet<usize> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
