//! Incremental rewiring: the Algorithm-1 hot path without full rebuilds.
//!
//! [`TopologyOptimizer::materialize`] reconstructs `G_t` from scratch —
//! clone the base graph, replay every deletion and addition — and the
//! driver then pays `GraphTensors::new` for fresh propagation operators.
//! Both costs are `O(N + E)` (worse for the two-hop operator) even though
//! one DRL step moves each per-node counter by at most one.
//!
//! [`RewiredGraph`] keeps the current `G_t` alive and applies only the
//! *delta* between two [`TopoState`]s, updating the graph, the operator
//! caches (row-wise, via [`GraphTensors::apply_edits`]) and the homophily
//! numerator in `O(changed)` time. The contract is exactness: after
//! `apply(topo, s)` the held graph is bit-identical to
//! `topo.materialize(&s)` and every operator is bit-identical to a fresh
//! build — enforced by the `rewire_equivalence` property suite.
//!
//! # Why the deletion pass is the hard part
//!
//! Additions are a set union of per-node top-`k_v` prefixes: order never
//! matters, so per-edge reference counts track membership exactly.
//! Deletions are different — `materialize` walks nodes in ascending order
//! and skips a removal whenever it would isolate either endpoint *at that
//! moment* (`degree > 1` on the evolving graph), which makes the outcome
//! order- and state-dependent. Two facts restore incrementality:
//!
//! 1. The pass only ever *decrements* degrees. Call a node *risky* when
//!    every one of its base edges is slated for deletion
//!    (`r[x] == base_deg(x)` where `r[x]` counts distinct slated edges at
//!    `x`). At any attempt on an edge incident to a non-risky `x`, at most
//!    `r[x] − 1` of `x`'s edges are already gone, so
//!    `degree(x) ≥ base_deg(x) − r[x] + 1 ≥ 2` and the guard factor at `x`
//!    provably passes. Hence only edges with a risky endpoint can ever be
//!    *kept* by the guard; every other slated edge is removed
//!    unconditionally and pure refcount bookkeeping suffices.
//! 2. The uncertain edges are resolved by a *localized* re-simulation:
//!    replay, in `materialize`'s global order, only the deletion prefixes
//!    of risky nodes and their base neighbours (every attempt on an
//!    uncertain edge originates there), tracking degrees of risky nodes
//!    alone. Guard outcomes are monotone within a pass (degrees never
//!    increase), so each uncertain edge is decided at its first attempt.
//!    Cost is `O(Σ_{v ∈ risky ∪ N(risky)} d_v)`, not `O(Σ d_v)`.
//!
//! The removed set is maintained as `slated ∖ kept` across transitions,
//! and the final topology is plain set algebra,
//! `G_t = (base ∖ removed) ∪ additions`, reconciled edge-by-edge against
//! the live graph with idempotent edits.
//!
//! # Kept-cache
//!
//! The localized replay itself is memoised per *risky component* — a
//! connected component of the base graph restricted to risky nodes.
//! Components are independent: an uncertain edge has at least one risky
//! endpoint; if both endpoints are risky they are base-adjacent and hence
//! in the same component, and a non-risky replay node's guard factor
//! always passes, so nothing couples two components' verdicts. Each
//! component's verdict depends only on its member set and the deletion
//! prefixes of `members ∪ N(members)`, so a cache entry keyed by the
//! component's smallest member and validated against a `(node, d)`
//! snapshot of exactly those nodes can be reused across transitions that
//! leave the component untouched — the common case when the DRL agent
//! edits one node's counters at a time.

use std::collections::BTreeSet;

use graphrare_entropy::EntropySequences;
use graphrare_gnn::GraphTensors;
use graphrare_graph::{edge_key, metrics, unkey, Graph};
use graphrare_telemetry as telemetry;

use crate::fxmap::{FxHashMap, FxHashSet};
use crate::state::TopoState;
use crate::topology::{EditMode, TopologyOptimizer};

/// What one [`RewiredGraph::apply`] changed on the live graph.
#[derive(Clone, Debug, Default)]
pub struct RewireDelta {
    /// Edges added to the graph by this transition (sorted).
    pub added: Vec<(usize, usize)>,
    /// Edges removed from the graph by this transition (sorted).
    pub removed: Vec<(usize, usize)>,
    /// Whether the deletion pass had to be re-simulated (a node risked
    /// isolation) instead of taking the pure refcount fast path.
    pub resimulated: bool,
}

impl RewireDelta {
    /// True when the transition left the graph untouched.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// One memoised risky-component verdict (see the module docs).
struct KeptEntry {
    /// Ascending risky members of the component.
    members: Vec<usize>,
    /// `(node, d)` snapshot of `members ∪ N(members)` — everything the
    /// replay's outcome can depend on besides the immutable sequences.
    dsnap: Vec<(usize, u16)>,
    /// Sorted kept edge keys the guard decided for this component.
    kept: Vec<u64>,
}

/// A persistent `G_t` with incrementally maintained operators.
///
/// Holds the graph produced by the *last applied* [`TopoState`] together
/// with its [`GraphTensors`] operator cache and homophily numerator.
/// [`apply`](RewiredGraph::apply) transitions to any other state — the
/// driver's ±1 steps, an episodic reset, or an arbitrary checkpoint jump —
/// touching only what changed. Always pass the same [`TopologyOptimizer`]
/// the instance was created from; base graph and sequences are immutable
/// for the lifetime of a run.
pub struct RewiredGraph {
    /// Applied per-node addition counts (mode-gated, sequence-truncated).
    k: Vec<u16>,
    /// Applied per-node deletion counts (mode-gated, sequence-truncated).
    d: Vec<u16>,
    /// Base-graph degrees (the deletion guard reasons about these).
    base_deg: Vec<u32>,
    /// Reference counts of edges selected by at least one top-`k` prefix.
    add_ref: FxHashMap<u64, u32>,
    /// Reference counts of edges slated for deletion (1 or 2: an edge can
    /// be slated by both endpoints).
    slated: FxHashMap<u64, u32>,
    /// Per-node count of *distinct* slated edges.
    r: Vec<u32>,
    /// Nodes whose every base edge is slated — only they can trip the
    /// isolation guard (ascending, for deterministic replay scoping).
    risky: BTreeSet<usize>,
    /// Edges of the base graph currently removed from the live graph;
    /// invariant after every `apply`: `removed == slated ∖ kept`.
    removed: FxHashSet<u64>,
    /// Slated edges the isolation guard kept alive on the last transition
    /// (always incident to a then-risky node; empty in the common case).
    kept: BTreeSet<u64>,
    /// Memoised per-component replay verdicts, keyed by smallest member.
    kept_cache: FxHashMap<usize, KeptEntry>,
    /// Same-label edge count of the live graph (homophily numerator).
    same_label: usize,
    /// The live graph plus row-patched propagation operators.
    tensors: GraphTensors,
}

impl RewiredGraph {
    /// Starts at `S_0` (the base graph, no edits).
    pub fn new(topo: &TopologyOptimizer) -> Self {
        let base = topo.base();
        let n = base.num_nodes();
        Self {
            k: vec![0; n],
            d: vec![0; n],
            base_deg: (0..n).map(|v| base.degree(v) as u32).collect(),
            add_ref: FxHashMap::default(),
            slated: FxHashMap::default(),
            r: vec![0; n],
            risky: BTreeSet::new(),
            removed: FxHashSet::default(),
            kept: BTreeSet::new(),
            kept_cache: FxHashMap::default(),
            same_label: metrics::same_label_edges(base),
            tensors: GraphTensors::new(base),
        }
    }

    /// Re-anchors the instance on a *new* optimiser whose base graph is
    /// exactly the current live graph (the entropy-refresh boundary: the
    /// driver rebuilds sequences against `G_t` and makes `G_t` the new
    /// `S_0`). All edit bookkeeping resets — counters, refcounts, risky
    /// sets, caches — while the live graph and its warmed operator
    /// caches carry over untouched, so no operator rebuild is paid.
    ///
    /// After this call the instance behaves exactly like
    /// `RewiredGraph::new(topo)`: subsequent [`apply`](Self::apply)
    /// calls must pass `topo` (and states sized for it).
    pub fn rebase(&mut self, topo: &TopologyOptimizer) {
        let base = topo.base();
        debug_assert_eq!(
            base.edge_vec(),
            self.graph().edge_vec(),
            "rebase: new optimiser base must equal the live graph"
        );
        let n = base.num_nodes();
        self.k = vec![0; n];
        self.d = vec![0; n];
        self.base_deg = (0..n).map(|v| base.degree(v) as u32).collect();
        self.add_ref = FxHashMap::default();
        self.slated = FxHashMap::default();
        self.r = vec![0; n];
        self.risky = BTreeSet::new();
        self.removed = FxHashSet::default();
        self.kept = BTreeSet::new();
        self.kept_cache = FxHashMap::default();
        // `same_label` and `tensors` describe the live graph, which *is*
        // the new base — nothing to recompute.
    }

    /// The live `G_t`.
    pub fn graph(&self) -> &Graph {
        self.tensors.graph()
    }

    /// The live operator cache (lazy per operator, row-patched on edits).
    pub fn tensors(&self) -> &GraphTensors {
        &self.tensors
    }

    /// Edge count of the live graph.
    pub fn num_edges(&self) -> usize {
        self.graph().num_edges()
    }

    /// Edge homophily of the live graph; bit-identical to
    /// [`metrics::homophily_ratio`] (same integer numerator, same division).
    pub fn homophily_ratio(&self) -> f64 {
        let m = self.graph().num_edges();
        if m == 0 {
            1.0
        } else {
            self.same_label as f64 / m as f64
        }
    }

    #[inline]
    fn is_risky(&self, x: usize) -> bool {
        self.r[x] > 0 && self.r[x] >= self.base_deg[x]
    }

    /// Adjusts `r[x]` and the risky-node census together.
    fn bump_r(&mut self, x: usize, up: bool) {
        let was = self.is_risky(x);
        if up {
            self.r[x] += 1;
        } else {
            self.r[x] -= 1;
        }
        let now = self.is_risky(x);
        if now && !was {
            self.risky.insert(x);
        } else if was && !now {
            self.risky.remove(&x);
        }
    }

    /// Localized replay of `materialize`'s deletion pass: decides which
    /// *uncertain* slated edges (those with a risky endpoint) the
    /// isolation guard keeps. Only the deletion prefixes of risky nodes
    /// and their base neighbours are walked — every attempt on an
    /// uncertain edge comes from one of them, certain-edge removals never
    /// change a risky node's degree, and a non-risky endpoint's guard
    /// factor always passes, so tracking risky degrees alone reproduces
    /// the sequential pass exactly. Guard outcomes are monotone within a
    /// pass (degrees only decrease), so the first attempt on an edge is
    /// decisive and re-attempts are no-ops.
    /// Decomposed per risky component (see the module docs) and memoised:
    /// a component whose member set and replay-prefix snapshot are
    /// unchanged since its last replay reuses the cached verdict.
    fn simulate_kept(&mut self, topo: &TopologyOptimizer) -> BTreeSet<u64> {
        let seqs = topo.sequences();
        let base = topo.base();
        let mut kept_all: BTreeSet<u64> = BTreeSet::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut visited: FxHashSet<usize> = FxHashSet::default();
        let risky: Vec<usize> = self.risky.iter().copied().collect();
        for &start in &risky {
            if visited.contains(&start) {
                continue;
            }
            // BFS over risky nodes only: the component's members.
            let mut members = vec![start];
            visited.insert(start);
            let mut qi = 0;
            while qi < members.len() {
                let y = members[qi];
                qi += 1;
                for u in base.neighbors(y) {
                    if self.risky.contains(&u) && visited.insert(u) {
                        members.push(u);
                    }
                }
            }
            members.sort_unstable();
            // Everything the verdict depends on: the deletion-prefix
            // lengths of members and their base neighbours (a node with
            // `d == 0` contributes no attempts, but its snapshot entry
            // still invalidates the cache when it starts contributing).
            let mut snap_nodes: Vec<usize> = members.clone();
            for &y in &members {
                snap_nodes.extend(base.neighbors(y));
            }
            snap_nodes.sort_unstable();
            snap_nodes.dedup();
            let dsnap: Vec<(usize, u16)> = snap_nodes.into_iter().map(|v| (v, self.d[v])).collect();
            let cache_key = members[0];
            if let Some(entry) = self.kept_cache.get(&cache_key) {
                if entry.members == members && entry.dsnap == dsnap {
                    hits += 1;
                    kept_all.extend(entry.kept.iter().copied());
                    continue;
                }
            }
            misses += 1;
            let kept = Self::replay_component(seqs, &self.base_deg, &members, &dsnap);
            kept_all.extend(kept.iter().copied());
            self.kept_cache.insert(cache_key, KeptEntry { members, dsnap, kept });
        }
        telemetry::counter("rewire.kept_cache_hits", hits);
        telemetry::counter("rewire.kept_cache_misses", misses);
        kept_all
    }

    /// Replays `materialize`'s deletion pass for one risky component:
    /// walks the deletion prefixes of `dsnap`'s nodes in ascending node
    /// order, tracking degrees of the component's members alone.
    fn replay_component(
        seqs: &EntropySequences,
        base_deg: &[u32],
        members: &[usize],
        dsnap: &[(usize, u16)],
    ) -> Vec<u64> {
        // Degrees of member nodes on the evolving graph; membership in
        // this map doubles as the risky test during replay.
        let mut deg: FxHashMap<usize, u32> = members.iter().map(|&y| (y, base_deg[y])).collect();
        let mut kept: Vec<u64> = Vec::new();
        let mut decided: FxHashSet<u64> = FxHashSet::default();
        for &(v, dv_len) in dsnap {
            for &(u, _) in seqs.deletions(v).iter().take(dv_len as usize) {
                let u = u as usize;
                if !deg.contains_key(&v) && !deg.contains_key(&u) {
                    // Certain edge, or uncertain in some *other* component:
                    // removed unconditionally as far as this replay goes.
                    continue;
                }
                let key = edge_key(v, u);
                if !decided.insert(key) {
                    continue;
                }
                let dv = deg.get(&v).copied().unwrap_or(2);
                let du = deg.get(&u).copied().unwrap_or(2);
                if dv > 1 && du > 1 {
                    if let Some(x) = deg.get_mut(&v) {
                        *x -= 1;
                    }
                    if let Some(x) = deg.get_mut(&u) {
                        *x -= 1;
                    }
                } else {
                    kept.push(key);
                }
            }
        }
        kept.sort_unstable();
        kept
    }

    /// Transitions the live graph from the last applied state to `state`,
    /// mirroring `topo.materialize(state)` exactly while touching only the
    /// changed per-node prefixes. Returns the edge-level delta.
    pub fn apply(&mut self, topo: &TopologyOptimizer, state: &TopoState) -> RewireDelta {
        let _span = telemetry::span("rewire.apply");
        let n = self.base_deg.len();
        assert_eq!(topo.base().num_nodes(), n, "optimizer/rewired node count mismatch");
        assert_eq!(state.num_nodes(), n, "state size mismatch");
        let mode = topo.mode();
        let seqs = topo.sequences();

        // Edges whose desired presence may have changed.
        let mut candidates: Vec<u64> = Vec::new();
        // Slated-set membership transitions (drive the deletion fast path).
        let mut slated_in: Vec<u64> = Vec::new();
        let mut slated_out: Vec<u64> = Vec::new();

        let delta_span = telemetry::span("rewire.delta_scan");
        for v in 0..n {
            // Addition prefix delta: per-edge refcounts over the union of
            // top-k prefixes; 0 <-> positive transitions are membership
            // changes. Mirrors materialize's `.take(k)` truncation and
            // RemoveOnly gating.
            let new_k = if mode == EditMode::RemoveOnly {
                0
            } else {
                state.k(v).min(seqs.additions(v).len())
            };
            let old_k = self.k[v] as usize;
            if new_k != old_k {
                let seq = seqs.additions(v);
                if new_k > old_k {
                    for &(u, _) in &seq[old_k..new_k] {
                        let key = edge_key(v, u as usize);
                        let c = self.add_ref.entry(key).or_insert(0);
                        *c += 1;
                        if *c == 1 {
                            candidates.push(key);
                        }
                    }
                } else {
                    for &(u, _) in &seq[new_k..old_k] {
                        let key = edge_key(v, u as usize);
                        let c = self.add_ref.get_mut(&key).expect("addition refcount underflow");
                        *c -= 1;
                        if *c == 0 {
                            self.add_ref.remove(&key);
                            candidates.push(key);
                        }
                    }
                }
                self.k[v] = new_k as u16;
            }

            // Deletion prefix delta: slated refcounts plus the per-node
            // distinct-incidence counters behind the risk census.
            let new_d =
                if mode == EditMode::AddOnly { 0 } else { state.d(v).min(seqs.deletions(v).len()) };
            let old_d = self.d[v] as usize;
            if new_d != old_d {
                let seq = seqs.deletions(v);
                if new_d > old_d {
                    for &(u, _) in &seq[old_d..new_d] {
                        let u = u as usize;
                        let key = edge_key(v, u);
                        let c = self.slated.entry(key).or_insert(0);
                        *c += 1;
                        let entered = *c == 1;
                        if entered {
                            slated_in.push(key);
                            self.bump_r(v, true);
                            self.bump_r(u, true);
                        }
                    }
                } else {
                    for &(u, _) in &seq[new_d..old_d] {
                        let u = u as usize;
                        let key = edge_key(v, u);
                        let c = self.slated.get_mut(&key).expect("deletion refcount underflow");
                        *c -= 1;
                        let left = *c == 0;
                        if left {
                            self.slated.remove(&key);
                            slated_out.push(key);
                            self.bump_r(v, false);
                            self.bump_r(u, false);
                        }
                    }
                }
                self.d[v] = new_d as u16;
            }
        }
        drop(delta_span);

        let guard_span = telemetry::span("rewire.guard");
        // Resolve the removed set for the new deletion prefixes, keeping
        // the invariant `removed == slated ∖ kept`. First sync every
        // transitioned key to its *final* slated membership — a key can
        // transition twice in one scan (leave one node's prefix, enter
        // another's), so replaying the transient events in order would be
        // wrong — then patch in the guard's verdict on uncertain edges.
        for key in slated_in.into_iter().chain(slated_out) {
            if self.slated.contains_key(&key) {
                self.removed.insert(key);
            } else {
                self.removed.remove(&key);
            }
            candidates.push(key);
        }
        let resimulated = !self.risky.is_empty();
        if !resimulated && !self.kept_cache.is_empty() {
            // No risky components left: stale verdicts can only waste
            // memory and mask a future component reusing the same key.
            self.kept_cache.clear();
        }
        let kept_now = if resimulated { self.simulate_kept(topo) } else { BTreeSet::new() };
        for &key in &kept_now {
            if self.removed.remove(&key) {
                candidates.push(key);
            }
        }
        for &key in &self.kept {
            if !kept_now.contains(&key)
                && self.slated.contains_key(&key)
                && self.removed.insert(key)
            {
                candidates.push(key);
            }
        }
        self.kept = kept_now;
        drop(guard_span);

        let reconcile_span = telemetry::span("rewire.reconcile");
        // Reconcile candidate edges against the live graph:
        // present in G_t  <=>  selected for addition, or a surviving base
        // edge. Candidates are sorted and deduplicated, so the delta lists
        // are deterministic.
        candidates.sort_unstable();
        candidates.dedup();
        let base = topo.base();
        let mut added: Vec<(usize, usize)> = Vec::new();
        let mut removed_edges: Vec<(usize, usize)> = Vec::new();
        // Key-sorted presence flips for the operator cache: candidates
        // ascend by edge key, so the list satisfies the sorted-flips
        // contract of `GraphTensors::apply_flips` by construction.
        let mut flips: Vec<(usize, usize, bool)> = Vec::with_capacity(candidates.len());
        for &key in &candidates {
            let (u, v) = unkey(key);
            let desired = self.add_ref.contains_key(&key)
                || (base.has_edge(u, v) && !self.removed.contains(&key));
            let current = self.tensors.graph().has_edge(u, v);
            if desired && !current {
                added.push((u, v));
                flips.push((u, v, true));
            } else if !desired && current {
                removed_edges.push((u, v));
                flips.push((u, v, false));
            }
        }

        let g = self.tensors.graph();
        for &(u, v) in &removed_edges {
            if g.label(u) == g.label(v) {
                self.same_label -= 1;
            }
        }
        for &(u, v) in &added {
            if g.label(u) == g.label(v) {
                self.same_label += 1;
            }
        }
        drop(reconcile_span);
        {
            let _op_span = telemetry::span("rewire.operators");
            self.tensors.apply_flips(&flips);
        }

        telemetry::counter("rewire.applies", 1);
        telemetry::counter("rewire.edges_added", added.len() as u64);
        telemetry::counter("rewire.edges_removed", removed_edges.len() as u64);
        if resimulated {
            telemetry::counter("rewire.resimulations", 1);
        } else {
            telemetry::counter("rewire.fast_updates", 1);
        }

        RewireDelta { added, removed: removed_edges, resimulated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_entropy::{
        CandidatePool, EntropySequences, RelativeEntropyConfig, RelativeEntropyTable,
        SequenceConfig,
    };
    use graphrare_tensor::Matrix;

    fn path_optimizer(mode: EditMode) -> TopologyOptimizer {
        // Path 0-1-2-3-4-5; features make far nodes {0,5} similar.
        let mut feats = Matrix::zeros(6, 2);
        for v in [0usize, 5] {
            feats.set(v, 0, 1.0);
        }
        for v in 1..5 {
            feats.set(v, 1, 1.0);
        }
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            feats,
            vec![0, 1, 1, 1, 1, 0],
            2,
        );
        let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let seqs = EntropySequences::build(
            &g,
            &table,
            &SequenceConfig { pool: CandidatePool::RemoteRing { hops: 5 }, max_additions: 8 },
        );
        TopologyOptimizer::new(g, seqs, mode)
    }

    /// Full-strength equality check against the reference path.
    fn assert_matches_materialize(rw: &RewiredGraph, topo: &TopologyOptimizer, state: &TopoState) {
        let want = topo.materialize(state);
        assert_eq!(rw.graph().edge_vec(), want.edge_vec(), "edge sets diverge");
        assert_eq!(rw.num_edges(), want.num_edges());
        assert_eq!(
            rw.homophily_ratio().to_bits(),
            metrics::homophily_ratio(&want).to_bits(),
            "homophily diverges"
        );
        let fresh = GraphTensors::new(&want);
        assert_eq!(*rw.tensors().gcn_norm(), *fresh.gcn_norm(), "gcn operator diverges");
        assert_eq!(*rw.tensors().two_hop(), *fresh.two_hop(), "two-hop operator diverges");
    }

    #[test]
    fn fresh_rewired_graph_is_base() {
        let topo = path_optimizer(EditMode::Both);
        let rw = RewiredGraph::new(&topo);
        assert_eq!(rw.graph().edge_vec(), topo.base().edge_vec());
        assert_eq!(rw.homophily_ratio().to_bits(), metrics::homophily_ratio(topo.base()).to_bits());
    }

    #[test]
    fn additions_and_reversal() {
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        // Operators built up-front so every transition exercises patching.
        rw.tensors().gcn_norm();
        rw.tensors().two_hop();
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        state.set_k(0, 2);
        state.set_k(3, 1);
        let delta = rw.apply(&topo, &state);
        assert!(!delta.added.is_empty());
        assert_matches_materialize(&rw, &topo, &state);
        // Walk back down to S0.
        state.set_k(0, 0);
        state.set_k(3, 0);
        let delta = rw.apply(&topo, &state);
        assert!(delta.removed.len() >= delta.added.len());
        assert_matches_materialize(&rw, &topo, &state);
        assert_eq!(rw.graph().edge_vec(), topo.base().edge_vec());
    }

    #[test]
    fn kept_cache_reuses_and_invalidates() {
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let n = topo.base().num_nodes();
        let k_max = vec![2u16; n];
        let d_max: Vec<u16> = (0..n).map(|v| topo.base().degree(v) as u16).collect();
        let mut state = TopoState::new(k_max, d_max);
        for v in 0..n {
            state.set_d(v, state.d_max(v));
        }
        // Slating every edge makes the whole path one risky component.
        assert!(rw.apply(&topo, &state).resimulated);
        assert_matches_materialize(&rw, &topo, &state);
        let entry = rw.kept_cache.get(&0).expect("whole path is one risky component");
        assert_eq!(entry.members, (0..n).collect::<Vec<_>>());
        assert!(!entry.kept.is_empty(), "the leaf guard must keep edges");
        let reused = entry.kept.as_ptr();
        // Addition-only transition: no deletion prefix changed, so the
        // verdict must be served from the cache (entry not rebuilt).
        state.set_k(0, 1);
        rw.apply(&topo, &state);
        assert_matches_materialize(&rw, &topo, &state);
        let entry = rw.kept_cache.get(&0).expect("component unchanged");
        assert_eq!(entry.kept.as_ptr(), reused, "unchanged component must hit the cache");
        // Shrinking a member's prefix changes the snapshot: the stale
        // verdict must be re-derived (the entry now carries the new d).
        state.set_d(2, 1);
        rw.apply(&topo, &state);
        assert_matches_materialize(&rw, &topo, &state);
        let entry = rw.kept_cache.get(&0).expect("component persists");
        assert!(entry.dsnap.contains(&(2, 1)), "entry must re-derive with the shrunk prefix");
        // Growing the prefix back is a second invalidation.
        state.set_d(2, 2);
        rw.apply(&topo, &state);
        assert_matches_materialize(&rw, &topo, &state);
        let entry = rw.kept_cache.get(&0).expect("component persists");
        assert!(entry.dsnap.contains(&(2, 2)), "entry must re-derive with the grown prefix");
        // Releasing every deletion empties the census and clears the cache.
        state.reset();
        rw.apply(&topo, &state);
        assert_matches_materialize(&rw, &topo, &state);
        assert!(rw.kept_cache.is_empty(), "cache must clear when the census empties");
    }

    #[test]
    fn deletion_guard_cascade_is_exact() {
        // On a path graph every interior deletion threatens a leaf: slating
        // d(1) = d_max covers both of node 1's edges, making nodes 0 and 1
        // risky, so the engine must fall back to simulation — and still
        // match the sequential guard semantics bit for bit.
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let n = topo.base().num_nodes();
        let k_max = vec![0u16; n];
        let d_max: Vec<u16> = (0..n).map(|v| topo.base().degree(v) as u16).collect();
        let mut state = TopoState::new(k_max, d_max);
        for v in 0..n {
            state.set_d(v, state.d_max(v));
        }
        let delta = rw.apply(&topo, &state);
        assert!(delta.resimulated, "guard-threatening trace must re-simulate");
        assert_matches_materialize(&rw, &topo, &state);
        // Releasing the deletions must recover the base graph through the
        // resync branch (removed != slated on the previous transition).
        state.reset();
        rw.apply(&topo, &state);
        assert_matches_materialize(&rw, &topo, &state);
        assert_eq!(rw.graph().edge_vec(), topo.base().edge_vec());
    }

    #[test]
    fn fast_path_used_when_no_isolation_risk() {
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        // Node 2 slates one of two edges: every endpoint keeps a spare.
        state.set_d(2, 1);
        let delta = rw.apply(&topo, &state);
        assert!(!delta.resimulated, "guard-free trace must take the fast path");
        assert_eq!(delta.removed.len(), 1);
        assert_matches_materialize(&rw, &topo, &state);
    }

    #[test]
    fn add_only_mode_ignores_deletions() {
        let topo = path_optimizer(EditMode::AddOnly);
        let mut rw = RewiredGraph::new(&topo);
        // Hand-built state with non-zero d: the mode gate must ignore it,
        // exactly as materialize does.
        let n = topo.base().num_nodes();
        let mut state = TopoState::new(vec![4; n], vec![4; n]);
        state.set_k(0, 1);
        state.set_d(2, 1);
        let delta = rw.apply(&topo, &state);
        assert!(delta.removed.is_empty());
        assert_matches_materialize(&rw, &topo, &state);
    }

    #[test]
    fn remove_only_mode_ignores_additions() {
        let topo = path_optimizer(EditMode::RemoveOnly);
        let mut rw = RewiredGraph::new(&topo);
        let n = topo.base().num_nodes();
        let mut state = TopoState::new(vec![4; n], vec![4; n]);
        state.set_k(0, 2);
        state.set_d(2, 1);
        let delta = rw.apply(&topo, &state);
        assert!(delta.added.is_empty());
        assert_matches_materialize(&rw, &topo, &state);
    }

    #[test]
    fn arbitrary_state_jumps_converge() {
        // Checkpoint restores jump counters arbitrarily; the engine must
        // land on materialize's output regardless of the path taken.
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        let jumps: &[&[(usize, usize, usize)]] = &[
            &[(0, 3, 0), (5, 2, 0)],
            &[(0, 0, 0), (2, 1, 1), (3, 0, 1)],
            &[(1, 2, 0), (4, 1, 1)],
            &[],
        ];
        for jump in jumps {
            state.reset();
            for &(v, k, d) in *jump {
                state.set_k(v, k);
                state.set_d(v, d);
            }
            rw.apply(&topo, &state);
            assert_matches_materialize(&rw, &topo, &state);
        }
    }

    #[test]
    fn reapplying_same_state_is_a_noop() {
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        state.set_k(1, 2);
        state.set_d(2, 1);
        rw.apply(&topo, &state);
        let delta = rw.apply(&topo, &state);
        assert!(delta.is_empty());
        assert!(!delta.resimulated);
        assert_matches_materialize(&rw, &topo, &state);
    }

    #[test]
    fn rebase_reanchors_on_live_graph() {
        // Drive the engine away from the base, then re-anchor it on a new
        // optimiser whose base IS the live graph (the entropy-refresh
        // boundary). Subsequent transitions must match materialize against
        // the new optimiser exactly, with no operator rebuild in between.
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        rw.tensors().gcn_norm();
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        state.set_k(0, 2);
        state.set_d(2, 1);
        rw.apply(&topo, &state);
        assert_matches_materialize(&rw, &topo, &state);
        assert_ne!(rw.graph().edge_vec(), topo.base().edge_vec());

        // Fresh sequences against the live graph, as refresh_sequences does.
        let live = rw.graph().clone();
        let table = RelativeEntropyTable::new(&live, &RelativeEntropyConfig::default());
        let seqs = EntropySequences::build(
            &live,
            &table,
            &SequenceConfig { pool: CandidatePool::RemoteRing { hops: 5 }, max_additions: 8 },
        );
        let topo2 = TopologyOptimizer::new(live, seqs, EditMode::Both);
        rw.rebase(&topo2);
        let mut state2 = TopoState::new(topo2.k_bounds(8), topo2.d_bounds(8));
        // S_0 of the new anchoring: the live graph itself.
        assert_matches_materialize(&rw, &topo2, &state2);
        // And transitions resume from there, including walking back to the
        // (new) base.
        state2.set_k(3, 1);
        state2.set_d(0, 1);
        rw.apply(&topo2, &state2);
        assert_matches_materialize(&rw, &topo2, &state2);
        state2.reset();
        rw.apply(&topo2, &state2);
        assert_matches_materialize(&rw, &topo2, &state2);
        assert_eq!(rw.graph().edge_vec(), topo2.base().edge_vec());
    }
}
