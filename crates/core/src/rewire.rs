//! Incremental rewiring: the Algorithm-1 hot path without full rebuilds.
//!
//! [`TopologyOptimizer::materialize`] reconstructs `G_t` from scratch —
//! clone the base graph, replay every deletion and addition — and the
//! driver then pays `GraphTensors::new` for fresh propagation operators.
//! Both costs are `O(N + E)` (worse for the two-hop operator) even though
//! one DRL step moves each per-node counter by at most one.
//!
//! [`RewiredGraph`] keeps the current `G_t` alive and applies only the
//! *delta* between two [`TopoState`]s, updating the graph, the operator
//! caches (row-wise, via [`GraphTensors::apply_edits`]) and the homophily
//! numerator in `O(changed)` time. The contract is exactness: after
//! `apply(topo, s)` the held graph is bit-identical to
//! `topo.materialize(&s)` and every operator is bit-identical to a fresh
//! build — enforced by the `rewire_equivalence` property suite.
//!
//! # Table-driven, allocation-free layout
//!
//! The optimiser's base graph and sequences are immutable for the lifetime
//! of an anchoring, so everything the per-step scan needs is precomputed
//! into flat tables when the instance (re-)anchors:
//!
//! * every undirected **base edge** gets an *edge id* (`eid`) assigned in
//!   ascending [`edge_key`] order (`eid_key` maps back), so sorted eid
//!   vectors iterate exactly like the former key-ordered `BTreeSet`s;
//! * the **partner index** `del_off`/`del_eid` maps deletion-sequence
//!   position `(v, i)` straight to the slated edge's eid, and
//!   `add_off`/`add_slot` maps addition-sequence position `(v, i)` to a
//!   canonical per-edge *slot* (`slot_key` maps back) — counter moves
//!   index arrays instead of probing hash maps;
//! * refcounts (`add_cnt`, `slated_cnt`), the removed set (`removed`
//!   bool-vec by eid) and the risky census (`r` plus `risky_count`) are
//!   plain vectors over those id spaces.
//!
//! All per-step working memory lives in [`ApplyScratch`]: sorted-`Vec`
//! buffers reused across steps and epoch-stamped mark arrays (a
//! generation bump replaces clearing), so a steady-state
//! [`apply`](RewiredGraph::apply) performs **zero heap allocations** —
//! including the operator refresh, which rebuilds cached CSR storage in
//! place (see `GraphTensors`). The `rewire_alloc` regression test pins
//! this with the counting allocator.
//!
//! # Why the deletion pass is the hard part
//!
//! Additions are a set union of per-node top-`k_v` prefixes: order never
//! matters, so per-edge reference counts track membership exactly.
//! Deletions are different — `materialize` walks nodes in ascending order
//! and skips a removal whenever it would isolate either endpoint *at that
//! moment* (`degree > 1` on the evolving graph), which makes the outcome
//! order- and state-dependent. Two facts restore incrementality:
//!
//! 1. The pass only ever *decrements* degrees. Call a node *risky* when
//!    every one of its base edges is slated for deletion
//!    (`r[x] == base_deg(x)` where `r[x]` counts distinct slated edges at
//!    `x`). At any attempt on an edge incident to a non-risky `x`, at most
//!    `r[x] − 1` of `x`'s edges are already gone, so
//!    `degree(x) ≥ base_deg(x) − r[x] + 1 ≥ 2` and the guard factor at `x`
//!    provably passes. Hence only edges with a risky endpoint can ever be
//!    *kept* by the guard; every other slated edge is removed
//!    unconditionally and pure refcount bookkeeping suffices.
//! 2. The uncertain edges are resolved by a *localized* re-simulation:
//!    replay, in `materialize`'s global order, only the deletion prefixes
//!    of risky nodes and their base neighbours (every attempt on an
//!    uncertain edge originates there), tracking degrees of risky nodes
//!    alone. Guard outcomes are monotone within a pass (degrees never
//!    increase), so each uncertain edge is decided at its first attempt.
//!    Cost is `O(Σ_{v ∈ risky ∪ N(risky)} d_v)`, not `O(Σ d_v)`.
//!
//! The removed set is maintained as `slated ∖ kept` across transitions,
//! and the final topology is plain set algebra,
//! `G_t = (base ∖ removed) ∪ additions`, reconciled edge-by-edge against
//! the live graph with idempotent edits.
//!
//! # Kept-cache
//!
//! The localized replay itself is memoised per *risky component* — a
//! connected component of the base graph restricted to risky nodes.
//! Components are independent: an uncertain edge has at least one risky
//! endpoint; if both endpoints are risky they are base-adjacent and hence
//! in the same component, and a non-risky replay node's guard factor
//! always passes, so nothing couples two components' verdicts. Each
//! component's verdict depends only on its member set and the deletion
//! prefixes of `members ∪ N(members)`, so a cache entry keyed by the
//! component's smallest member and validated against a `(node, d)`
//! snapshot of exactly those nodes can be reused across transitions that
//! leave the component untouched — the common case when the DRL agent
//! edits one node's counters at a time. Cache-entry storage is updated in
//! place on re-derivation, so steady-state misses reuse the entry's
//! capacity.
//!
//! # Failure
//!
//! The scan validates the passed state/optimizer pair against its
//! anchored tables instead of panicking: a corrupt or version-skewed
//! checkpoint restore surfaces as a typed [`RewireError`] the caller
//! propagates as a per-run failure (under `graphrare-serve`, one tenant's
//! run fails; the worker slot survives).

use graphrare_entropy::EntropySequences;
use graphrare_gnn::GraphTensors;
use graphrare_graph::{edge_key, metrics, unkey, Graph};
use graphrare_telemetry as telemetry;

use crate::fxmap::FxHashMap;
use crate::state::TopoState;
use crate::topology::{EditMode, TopologyOptimizer};

/// What one [`RewiredGraph::apply`] changed on the live graph.
#[derive(Clone, Debug, Default)]
pub struct RewireDelta {
    /// Edges added to the graph by this transition (sorted).
    pub added: Vec<(usize, usize)>,
    /// Edges removed from the graph by this transition (sorted).
    pub removed: Vec<(usize, usize)>,
    /// Whether the deletion pass had to be re-simulated (a node risked
    /// isolation) instead of taking the pure refcount fast path.
    pub resimulated: bool,
}

impl RewireDelta {
    /// True when the transition left the graph untouched.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Typed failure of [`RewiredGraph::apply`]: the passed state/optimizer
/// pair contradicts the bookkeeping accumulated under the anchored
/// optimizer — the shape a corrupt or version-skewed checkpoint restore
/// (or a caller passing a different optimizer) produces. The instance may
/// be left partially transitioned; treat the run as failed and discard
/// the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RewireError {
    /// Releasing addition-selected edge `{u, v}` would drive its
    /// refcount negative. Structurally unreachable under the positional
    /// partner index (decrements revisit exactly the incremented
    /// positions); kept as defense-in-depth so corruption surfaces as a
    /// per-run failure instead of silent state damage.
    AdditionUnderflow {
        /// Smaller endpoint of the edge.
        u: usize,
        /// Larger endpoint of the edge.
        v: usize,
    },
    /// Releasing slated edge `{u, v}` would drive its refcount negative
    /// (same defense-in-depth as `AdditionUnderflow`).
    DeletionUnderflow {
        /// Smaller endpoint of the edge.
        u: usize,
        /// Larger endpoint of the edge.
        v: usize,
    },
    /// A node's prefix under the passed optimizer extends beyond the
    /// anchored sequence row — the optimizer is not the one this
    /// instance was anchored on.
    SequenceSkew {
        /// The node whose sequence lengths disagree.
        node: usize,
    },
}

impl std::fmt::Display for RewireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RewireError::AdditionUnderflow { u, v } => {
                write!(f, "addition refcount underflow on edge {u}-{v}")
            }
            RewireError::DeletionUnderflow { u, v } => {
                write!(f, "deletion refcount underflow on edge {u}-{v}")
            }
            RewireError::SequenceSkew { node } => {
                write!(f, "sequence skew at node {node}: prefix exceeds the anchored sequence row")
            }
        }
    }
}

impl std::error::Error for RewireError {}

/// One memoised risky-component verdict (see the module docs).
struct KeptEntry {
    /// Ascending risky members of the component.
    members: Vec<usize>,
    /// `(node, d)` snapshot of `members ∪ N(members)` — everything the
    /// replay's outcome can depend on besides the immutable sequences.
    dsnap: Vec<(usize, u16)>,
    /// Sorted kept edge ids the guard decided for this component.
    kept: Vec<u32>,
}

/// Epoch-stamped mark state for the localized replay: bumping a
/// generation invalidates every mark in `O(1)`, so per-component replays
/// never clear (or allocate) their working sets.
#[derive(Default)]
struct ReplayMarks {
    /// `member_mark[x] == member_gen` ⟺ `x` is a member of the component
    /// currently being replayed.
    member_mark: Vec<u32>,
    /// Evolving degree of member nodes (valid where `member_mark` hits).
    member_deg: Vec<u32>,
    member_gen: u32,
    /// First-attempt-decisive marks by eid.
    decided_mark: Vec<u32>,
    decided_gen: u32,
}

impl ReplayMarks {
    /// Replays `materialize`'s deletion pass for one risky component:
    /// walks the deletion prefixes of `dsnap`'s nodes in ascending node
    /// order, tracking degrees of the component's members alone. Writes
    /// the component's kept eids, ascending, into `out`.
    fn replay(
        &mut self,
        seqs: &EntropySequences,
        base_deg: &[u32],
        del: (&[u32], &[u32]),
        members: &[usize],
        dsnap: &[(usize, u16)],
        out: &mut Vec<u32>,
    ) {
        let (del_off, del_eid) = del;
        let mgen = next_gen(&mut self.member_mark, &mut self.member_gen);
        for &y in members {
            self.member_mark[y] = mgen;
            self.member_deg[y] = base_deg[y];
        }
        let dgen = next_gen(&mut self.decided_mark, &mut self.decided_gen);
        out.clear();
        for &(v, dv_len) in dsnap {
            let row = &del_eid[del_off[v] as usize..];
            for (i, &(u, _)) in seqs.deletions(v).iter().take(dv_len as usize).enumerate() {
                let u = u as usize;
                let v_member = self.member_mark[v] == mgen;
                let u_member = self.member_mark[u] == mgen;
                if !v_member && !u_member {
                    // Certain edge, or uncertain in some *other* component:
                    // removed unconditionally as far as this replay goes.
                    continue;
                }
                let eid = row[i] as usize;
                if self.decided_mark[eid] == dgen {
                    continue;
                }
                self.decided_mark[eid] = dgen;
                let dv = if v_member { self.member_deg[v] } else { 2 };
                let du = if u_member { self.member_deg[u] } else { 2 };
                if dv > 1 && du > 1 {
                    if v_member {
                        self.member_deg[v] -= 1;
                    }
                    if u_member {
                        self.member_deg[u] -= 1;
                    }
                } else {
                    out.push(eid as u32);
                }
            }
        }
        // Eids ascend with edge keys, so this reproduces the former
        // key-sorted verdict exactly.
        out.sort_unstable();
    }
}

/// Per-step working memory, reused across [`RewiredGraph::apply`] calls.
/// Buffers are cleared (never shrunk) between steps, so a warmed-up
/// instance runs the whole scan without touching the heap.
#[derive(Default)]
struct ApplyScratch {
    /// Edges whose desired presence may have changed this step:
    /// `(edge key, slot-or-eid, is_addition)`.
    candidates: Vec<(u64, u32, bool)>,
    /// Eids that entered the slated set this step.
    slated_in: Vec<u32>,
    /// Eids that left the slated set this step.
    slated_out: Vec<u32>,
    /// This step's guard verdict (sorted eids); swapped with
    /// `RewiredGraph::kept` at the end of the guard phase.
    kept_now: Vec<u32>,
    /// Risky-component BFS output (ascending members).
    members: Vec<usize>,
    /// `members ∪ N(members)` assembly buffer.
    snap_nodes: Vec<usize>,
    /// `(node, d)` snapshot buffer.
    dsnap: Vec<(usize, u16)>,
    /// One component's replay verdict.
    comp_kept: Vec<u32>,
    /// Key-sorted presence flips handed to the operator cache.
    flips: Vec<(usize, usize, bool)>,
    /// BFS visited marks (`visit_mark[x] == visit_gen`), one generation
    /// per `simulate_kept` call.
    visit_mark: Vec<u32>,
    visit_gen: u32,
    /// Replay mark state (one generation per component).
    marks: ReplayMarks,
}

impl ApplyScratch {
    /// Sizes the mark arrays for `n` nodes and `m` base edges and resets
    /// every generation (anchor boundary — allocation is fine here).
    fn reset(&mut self, n: usize, m: usize) {
        self.candidates.clear();
        self.slated_in.clear();
        self.slated_out.clear();
        self.kept_now.clear();
        self.members.clear();
        self.snap_nodes.clear();
        self.dsnap.clear();
        self.comp_kept.clear();
        self.flips.clear();
        self.visit_mark.clear();
        self.visit_mark.resize(n, 0);
        self.visit_gen = 0;
        self.marks.member_mark.clear();
        self.marks.member_mark.resize(n, 0);
        self.marks.member_deg.clear();
        self.marks.member_deg.resize(n, 0);
        self.marks.member_gen = 0;
        self.marks.decided_mark.clear();
        self.marks.decided_mark.resize(m, 0);
        self.marks.decided_gen = 0;
    }
}

/// Advances an epoch counter, clearing `marks` on wraparound so a stale
/// generation can never collide with a live one.
fn next_gen(marks: &mut [u32], gen: &mut u32) -> u32 {
    *gen = gen.wrapping_add(1);
    if *gen == 0 {
        marks.fill(0);
        *gen = 1;
    }
    *gen
}

/// The risky predicate over the raw census fields (free function so scan
/// loops can hold disjoint field borrows).
#[inline]
fn node_is_risky(r: &[u32], base_deg: &[u32], x: usize) -> bool {
    r[x] > 0 && r[x] >= base_deg[x]
}

/// Adjusts `r[x]` and the risky-node count together.
#[inline]
fn bump_r(r: &mut [u32], base_deg: &[u32], risky_count: &mut usize, x: usize, up: bool) {
    let was = node_is_risky(r, base_deg, x);
    if up {
        r[x] += 1;
    } else {
        r[x] -= 1;
    }
    let now = node_is_risky(r, base_deg, x);
    if now && !was {
        *risky_count += 1;
    } else if was && !now {
        *risky_count -= 1;
    }
}

/// A persistent `G_t` with incrementally maintained operators.
///
/// Holds the graph produced by the *last applied* [`TopoState`] together
/// with its [`GraphTensors`] operator cache and homophily numerator.
/// [`apply`](RewiredGraph::apply) transitions to any other state — the
/// driver's ±1 steps, an episodic reset, or an arbitrary checkpoint jump —
/// touching only what changed. Always pass the same [`TopologyOptimizer`]
/// the instance was created from; base graph and sequences are immutable
/// for the lifetime of a run (a mismatched pair surfaces as
/// [`RewireError`]).
pub struct RewiredGraph {
    /// Applied per-node addition counts (mode-gated, sequence-truncated).
    k: Vec<u16>,
    /// Applied per-node deletion counts (mode-gated, sequence-truncated).
    d: Vec<u16>,
    /// Base-graph degrees (the deletion guard reasons about these).
    base_deg: Vec<u32>,
    /// Eid → packed edge key of the base edge, ascending (eid order and
    /// key order coincide by construction).
    eid_key: Vec<u64>,
    /// Deletion partner index: `del_eid[del_off[v] + i]` is the eid of
    /// `sequences.deletions(v)[i]`.
    del_off: Vec<u32>,
    del_eid: Vec<u32>,
    /// Addition partner index: `add_slot[add_off[v] + i]` is the
    /// canonical slot of `sequences.additions(v)[i]`.
    add_off: Vec<u32>,
    add_slot: Vec<u32>,
    /// Slot → packed edge key of the addition candidate.
    slot_key: Vec<u64>,
    /// Reference counts of addition-selected edges, by slot (≤ 2: each
    /// endpoint's prefix can select the edge once).
    add_cnt: Vec<u32>,
    /// Reference counts of slated edges, by eid (≤ 2 likewise).
    slated_cnt: Vec<u32>,
    /// Per-node count of *distinct* slated edges.
    r: Vec<u32>,
    /// How many nodes are currently risky (the census itself is derived
    /// from `r`/`base_deg` on demand).
    risky_count: usize,
    /// Base edges currently removed from the live graph, by eid;
    /// invariant after every `apply`: `removed == slated ∖ kept`.
    removed: Vec<bool>,
    /// Slated eids the isolation guard kept alive on the last transition
    /// (sorted; always incident to a then-risky node; empty in the
    /// common case).
    kept: Vec<u32>,
    /// Memoised per-component replay verdicts, keyed by smallest member.
    kept_cache: FxHashMap<usize, KeptEntry>,
    /// Same-label edge count of the live graph (homophily numerator).
    same_label: usize,
    /// The live graph plus row-patched propagation operators.
    tensors: GraphTensors,
    /// Reused per-step working memory.
    scratch: ApplyScratch,
}

impl RewiredGraph {
    /// Starts at `S_0` (the base graph, no edits).
    pub fn new(topo: &TopologyOptimizer) -> Self {
        let base = topo.base();
        let mut rw = Self {
            k: Vec::new(),
            d: Vec::new(),
            base_deg: Vec::new(),
            eid_key: Vec::new(),
            del_off: Vec::new(),
            del_eid: Vec::new(),
            add_off: Vec::new(),
            add_slot: Vec::new(),
            slot_key: Vec::new(),
            add_cnt: Vec::new(),
            slated_cnt: Vec::new(),
            r: Vec::new(),
            risky_count: 0,
            removed: Vec::new(),
            kept: Vec::new(),
            kept_cache: FxHashMap::default(),
            same_label: metrics::same_label_edges(base),
            tensors: GraphTensors::new(base),
            scratch: ApplyScratch::default(),
        };
        rw.reset_tables(topo);
        rw
    }

    /// Re-anchors the instance on a *new* optimiser whose base graph is
    /// exactly the current live graph (the entropy-refresh boundary: the
    /// driver rebuilds sequences against `G_t` and makes `G_t` the new
    /// `S_0`). All edit bookkeeping resets — counters, refcounts, risky
    /// census, partner tables, caches — while the live graph and its
    /// warmed operator caches carry over untouched, so no operator
    /// rebuild is paid.
    ///
    /// After this call the instance behaves exactly like
    /// `RewiredGraph::new(topo)`: subsequent [`apply`](Self::apply)
    /// calls must pass `topo` (and states sized for it).
    pub fn rebase(&mut self, topo: &TopologyOptimizer) {
        debug_assert_eq!(
            topo.base().edge_vec(),
            self.graph().edge_vec(),
            "rebase: new optimiser base must equal the live graph"
        );
        self.reset_tables(topo);
        // `same_label` and `tensors` describe the live graph, which *is*
        // the new base — nothing to recompute.
    }

    /// (Re)builds the anchored tables from the optimiser's base graph and
    /// sequences, resetting every counter. The one place the engine is
    /// allowed to allocate.
    fn reset_tables(&mut self, topo: &TopologyOptimizer) {
        let base = topo.base();
        let seqs = topo.sequences();
        let n = base.num_nodes();
        self.k.clear();
        self.k.resize(n, 0);
        self.d.clear();
        self.d.resize(n, 0);
        self.base_deg.clear();
        self.base_deg.extend((0..n).map(|v| base.degree(v) as u32));
        // Directed row offsets for the row-aligned `row_eid` table below.
        let mut row_start: Vec<u32> = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        row_start.push(0);
        for v in 0..n {
            acc += self.base_deg[v];
            row_start.push(acc);
        }
        // Eids: scan base rows ascending, keep u < v once — this visits
        // edges in ascending edge_key order, so eid order == key order.
        // `row_eid` mirrors the directed adjacency (both directions), so
        // the deletion index below resolves each sequence entry with one
        // short in-row binary search instead of probing the much larger
        // (and cache-hostile) global `eid_key` array per entry.
        // Reverse entries need no search: `v` ascends, and a node's
        // smaller neighbours are its row's sorted prefix, so each node's
        // reverse slots fill left-to-right behind a cursor.
        let mut row_eid: Vec<u32> = vec![0; acc as usize];
        let mut rev_cursor: Vec<u32> = vec![0; n];
        self.eid_key.clear();
        for v in 0..n {
            let row = base.neighbor_slice(v);
            for (i, &u) in row.iter().enumerate() {
                let u = u as usize;
                if u > v {
                    let eid = self.eid_key.len() as u32;
                    self.eid_key.push(edge_key(v, u));
                    row_eid[row_start[v] as usize + i] = eid;
                    let p = (row_start[u] + rev_cursor[u]) as usize;
                    debug_assert_eq!(
                        base.neighbor_slice(u)[rev_cursor[u] as usize],
                        v as u32,
                        "CSR rows must mirror both directions"
                    );
                    row_eid[p] = eid;
                    rev_cursor[u] += 1;
                }
            }
        }
        debug_assert!(self.eid_key.windows(2).all(|w| w[0] < w[1]), "eids must ascend with keys");
        let m = self.eid_key.len();
        // Deletion partner index: sequences list base neighbours, so
        // every entry resolves to an eid through its row position.
        self.del_off.clear();
        self.del_off.push(0);
        self.del_eid.clear();
        for (v, &off) in row_start.iter().enumerate().take(n) {
            let row = base.neighbor_slice(v);
            let off = off as usize;
            for &(u, _) in seqs.deletions(v) {
                let p = row.binary_search(&u).expect("deletion sequence entry must be a base edge");
                self.del_eid.push(row_eid[off + p]);
            }
            self.del_off.push(self.del_eid.len() as u32);
        }
        // Addition partner index: canonicalize candidate pairs (an edge
        // can appear in both endpoints' rankings) into slots in key
        // order. Candidate pools exclude current neighbours, so addition
        // keys and base-edge keys are disjoint — reconcile relies on it.
        // Key order is recovered by a counting scatter over the key's
        // high word (the min endpoint) plus tiny per-bucket sorts — the
        // `CsrAdjacency::apply_changes` trick, far cheaper than one
        // global comparison sort of every (key, position) pair.
        self.add_off.clear();
        self.add_off.push(0);
        let mut cursor: Vec<u32> = vec![0; n];
        let mut total = 0u32;
        for v in 0..n {
            for &(u, _) in seqs.additions(v) {
                debug_assert!(
                    base.neighbor_slice(v).binary_search(&u).is_err(),
                    "addition candidate {:?} is a base edge",
                    unkey(edge_key(v, u as usize))
                );
                cursor[v.min(u as usize)] += 1;
                total += 1;
            }
            self.add_off.push(total);
        }
        {
            // Counts → per-bucket start cursors, in place.
            let mut s = 0u32;
            for c in cursor.iter_mut() {
                let count = *c;
                *c = s;
                s += count;
            }
        }
        let mut keyed: Vec<(u64, u32)> = vec![(0, 0); total as usize];
        let mut pos = 0u32;
        for v in 0..n {
            for &(u, _) in seqs.additions(v) {
                let key = edge_key(v, u as usize);
                let b = (key >> 32) as usize;
                keyed[cursor[b] as usize] = (key, pos);
                cursor[b] += 1;
                pos += 1;
            }
        }
        // `cursor[b]` is now bucket b's end; buckets are contiguous, so
        // sorting each slice by (key, position) reproduces exactly the
        // old global `sort_unstable` order.
        let mut lo = 0usize;
        for &hi in &cursor {
            keyed[lo..hi as usize].sort_unstable();
            lo = hi as usize;
        }
        self.slot_key.clear();
        self.add_slot.clear();
        self.add_slot.resize(keyed.len(), 0);
        for &(key, pos) in &keyed {
            if self.slot_key.last() != Some(&key) {
                self.slot_key.push(key);
            }
            self.add_slot[pos as usize] = (self.slot_key.len() - 1) as u32;
        }
        self.add_cnt.clear();
        self.add_cnt.resize(self.slot_key.len(), 0);
        self.slated_cnt.clear();
        self.slated_cnt.resize(m, 0);
        self.r.clear();
        self.r.resize(n, 0);
        self.risky_count = 0;
        self.removed.clear();
        self.removed.resize(m, false);
        self.kept.clear();
        self.kept_cache.clear();
        self.scratch.reset(n, m);
    }

    /// The live `G_t`.
    pub fn graph(&self) -> &Graph {
        self.tensors.graph()
    }

    /// The live operator cache (lazy per operator, row-patched on edits).
    pub fn tensors(&self) -> &GraphTensors {
        &self.tensors
    }

    /// Edge count of the live graph.
    pub fn num_edges(&self) -> usize {
        self.graph().num_edges()
    }

    /// Edge homophily of the live graph; bit-identical to
    /// [`metrics::homophily_ratio`] (same integer numerator, same division).
    pub fn homophily_ratio(&self) -> f64 {
        let m = self.graph().num_edges();
        if m == 0 {
            1.0
        } else {
            self.same_label as f64 / m as f64
        }
    }

    /// Localized replay of `materialize`'s deletion pass: decides which
    /// *uncertain* slated edges (those with a risky endpoint) the
    /// isolation guard keeps, writing the sorted verdict into
    /// `scratch.kept_now`. Only the deletion prefixes of risky nodes
    /// and their base neighbours are walked — every attempt on an
    /// uncertain edge comes from one of them, certain-edge removals never
    /// change a risky node's degree, and a non-risky endpoint's guard
    /// factor always passes, so tracking risky degrees alone reproduces
    /// the sequential pass exactly. Guard outcomes are monotone within a
    /// pass (degrees only decrease), so the first attempt on an edge is
    /// decisive and re-attempts are no-ops.
    /// Decomposed per risky component (see the module docs) and memoised:
    /// a component whose member set and replay-prefix snapshot are
    /// unchanged since its last replay reuses the cached verdict.
    fn simulate_kept(&mut self, topo: &TopologyOptimizer) {
        use std::collections::hash_map::Entry;
        let seqs = topo.sequences();
        let base = topo.base();
        self.scratch.kept_now.clear();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let vgen = next_gen(&mut self.scratch.visit_mark, &mut self.scratch.visit_gen);
        for start in 0..self.r.len() {
            if !node_is_risky(&self.r, &self.base_deg, start)
                || self.scratch.visit_mark[start] == vgen
            {
                continue;
            }
            // BFS over risky nodes only: the component's members.
            self.scratch.members.clear();
            self.scratch.members.push(start);
            self.scratch.visit_mark[start] = vgen;
            let mut qi = 0;
            while qi < self.scratch.members.len() {
                let y = self.scratch.members[qi];
                qi += 1;
                for u in base.neighbors(y) {
                    if node_is_risky(&self.r, &self.base_deg, u)
                        && self.scratch.visit_mark[u] != vgen
                    {
                        self.scratch.visit_mark[u] = vgen;
                        self.scratch.members.push(u);
                    }
                }
            }
            self.scratch.members.sort_unstable();
            // Everything the verdict depends on: the deletion-prefix
            // lengths of members and their base neighbours (a node with
            // `d == 0` contributes no attempts, but its snapshot entry
            // still invalidates the cache when it starts contributing).
            self.scratch.snap_nodes.clear();
            self.scratch.snap_nodes.extend_from_slice(&self.scratch.members);
            for i in 0..self.scratch.members.len() {
                let y = self.scratch.members[i];
                self.scratch.snap_nodes.extend(base.neighbors(y));
            }
            self.scratch.snap_nodes.sort_unstable();
            self.scratch.snap_nodes.dedup();
            self.scratch.dsnap.clear();
            self.scratch.dsnap.extend(self.scratch.snap_nodes.iter().map(|&v| (v, self.d[v])));
            let cache_key = self.scratch.members[0];
            if let Some(entry) = self.kept_cache.get(&cache_key) {
                if entry.members == self.scratch.members && entry.dsnap == self.scratch.dsnap {
                    hits += 1;
                    self.scratch.kept_now.extend_from_slice(&entry.kept);
                    continue;
                }
            }
            misses += 1;
            self.scratch.marks.replay(
                seqs,
                &self.base_deg,
                (&self.del_off, &self.del_eid),
                &self.scratch.members,
                &self.scratch.dsnap,
                &mut self.scratch.comp_kept,
            );
            self.scratch.kept_now.extend_from_slice(&self.scratch.comp_kept);
            // Update the memo in place: steady-state re-derivations reuse
            // the entry's buffers; only brand-new components allocate.
            match self.kept_cache.entry(cache_key) {
                Entry::Occupied(mut occ) => {
                    let e = occ.get_mut();
                    e.members.clear();
                    e.members.extend_from_slice(&self.scratch.members);
                    e.dsnap.clear();
                    e.dsnap.extend_from_slice(&self.scratch.dsnap);
                    e.kept.clear();
                    e.kept.extend_from_slice(&self.scratch.comp_kept);
                }
                Entry::Vacant(vac) => {
                    vac.insert(KeptEntry {
                        members: self.scratch.members.clone(),
                        dsnap: self.scratch.dsnap.clone(),
                        kept: self.scratch.comp_kept.clone(),
                    });
                }
            }
        }
        // Components are edge-disjoint but interleave in key space; the
        // patch step binary-searches this, so restore global order.
        self.scratch.kept_now.sort_unstable();
        telemetry::counter("rewire.kept_cache_hits", hits);
        telemetry::counter("rewire.kept_cache_misses", misses);
    }

    /// Transitions the live graph from the last applied state to `state`,
    /// mirroring `topo.materialize(state)` exactly while touching only the
    /// changed per-node prefixes. Returns the edge-level delta.
    ///
    /// Allocating convenience wrapper around
    /// [`apply_into`](Self::apply_into); hot paths hold a
    /// [`RewireDelta`] and call `apply_into` to stay allocation-free.
    pub fn apply(
        &mut self,
        topo: &TopologyOptimizer,
        state: &TopoState,
    ) -> Result<RewireDelta, RewireError> {
        let mut out = RewireDelta::default();
        self.apply_into(topo, state, &mut out)?;
        Ok(out)
    }

    /// [`apply`](Self::apply) writing the delta into a caller-held
    /// buffer. On a warmed-up instance a steady-state call performs zero
    /// heap allocations end to end (scan, guard, reconcile, operator
    /// refresh).
    ///
    /// # Errors
    /// Returns a [`RewireError`] when the state/optimizer pair is
    /// inconsistent with the anchored tables (corrupt or version-skewed
    /// restore). The instance may then be partially transitioned: treat
    /// the error as fatal for this run and discard the instance.
    pub fn apply_into(
        &mut self,
        topo: &TopologyOptimizer,
        state: &TopoState,
        out: &mut RewireDelta,
    ) -> Result<(), RewireError> {
        let _span = telemetry::span("rewire.apply");
        let n = self.base_deg.len();
        assert_eq!(topo.base().num_nodes(), n, "optimizer/rewired node count mismatch");
        assert_eq!(state.num_nodes(), n, "state size mismatch");
        let mode = topo.mode();
        let seqs = topo.sequences();

        out.added.clear();
        out.removed.clear();
        out.resimulated = false;

        let delta_span = telemetry::span("rewire.delta_scan");
        self.scratch.candidates.clear();
        self.scratch.slated_in.clear();
        self.scratch.slated_out.clear();
        for v in 0..n {
            // Addition prefix delta: per-edge refcounts over the union of
            // top-k prefixes; 0 <-> positive transitions are membership
            // changes. Mirrors materialize's `.take(k)` truncation and
            // RemoveOnly gating. The partner index turns each sequence
            // position into its canonical slot directly.
            let new_k = if mode == EditMode::RemoveOnly {
                0
            } else {
                state.k(v).min(seqs.additions(v).len())
            };
            let old_k = self.k[v] as usize;
            if new_k != old_k {
                let off = self.add_off[v] as usize;
                let row_len = self.add_off[v + 1] as usize - off;
                if new_k.max(old_k) > row_len {
                    return Err(RewireError::SequenceSkew { node: v });
                }
                let slots = &self.add_slot[off..off + row_len];
                if new_k > old_k {
                    for &slot in &slots[old_k..new_k] {
                        let c = &mut self.add_cnt[slot as usize];
                        *c += 1;
                        if *c == 1 {
                            self.scratch.candidates.push((
                                self.slot_key[slot as usize],
                                slot,
                                true,
                            ));
                        }
                    }
                } else {
                    for &slot in &slots[new_k..old_k] {
                        let c = &mut self.add_cnt[slot as usize];
                        if *c == 0 {
                            let (a, b) = unkey(self.slot_key[slot as usize]);
                            return Err(RewireError::AdditionUnderflow { u: a, v: b });
                        }
                        *c -= 1;
                        if *c == 0 {
                            self.scratch.candidates.push((
                                self.slot_key[slot as usize],
                                slot,
                                true,
                            ));
                        }
                    }
                }
                self.k[v] = new_k as u16;
            }

            // Deletion prefix delta: slated refcounts plus the per-node
            // distinct-incidence counters behind the risk census.
            let new_d =
                if mode == EditMode::AddOnly { 0 } else { state.d(v).min(seqs.deletions(v).len()) };
            let old_d = self.d[v] as usize;
            if new_d != old_d {
                let off = self.del_off[v] as usize;
                let row_len = self.del_off[v + 1] as usize - off;
                if new_d.max(old_d) > row_len {
                    return Err(RewireError::SequenceSkew { node: v });
                }
                if new_d > old_d {
                    for i in old_d..new_d {
                        let eid = self.del_eid[off + i];
                        let c = &mut self.slated_cnt[eid as usize];
                        *c += 1;
                        if *c == 1 {
                            self.scratch.slated_in.push(eid);
                            let (a, b) = unkey(self.eid_key[eid as usize]);
                            bump_r(&mut self.r, &self.base_deg, &mut self.risky_count, a, true);
                            bump_r(&mut self.r, &self.base_deg, &mut self.risky_count, b, true);
                        }
                    }
                } else {
                    for i in new_d..old_d {
                        let eid = self.del_eid[off + i];
                        let c = &mut self.slated_cnt[eid as usize];
                        if *c == 0 {
                            let (a, b) = unkey(self.eid_key[eid as usize]);
                            return Err(RewireError::DeletionUnderflow { u: a, v: b });
                        }
                        *c -= 1;
                        if *c == 0 {
                            self.scratch.slated_out.push(eid);
                            let (a, b) = unkey(self.eid_key[eid as usize]);
                            bump_r(&mut self.r, &self.base_deg, &mut self.risky_count, a, false);
                            bump_r(&mut self.r, &self.base_deg, &mut self.risky_count, b, false);
                        }
                    }
                }
                self.d[v] = new_d as u16;
            }
        }
        drop(delta_span);

        let guard_span = telemetry::span("rewire.guard");
        // Resolve the removed set for the new deletion prefixes, keeping
        // the invariant `removed == slated ∖ kept`. First sync every
        // transitioned eid to its *final* slated membership — an edge can
        // transition twice in one scan (leave one node's prefix, enter
        // another's), so replaying the transient events in order would be
        // wrong — then patch in the guard's verdict on uncertain edges.
        for &eid in self.scratch.slated_in.iter().chain(self.scratch.slated_out.iter()) {
            let eid = eid as usize;
            self.removed[eid] = self.slated_cnt[eid] > 0;
            self.scratch.candidates.push((self.eid_key[eid], eid as u32, false));
        }
        let resimulated = self.risky_count > 0;
        if !resimulated && !self.kept_cache.is_empty() {
            // No risky components left: stale verdicts can only waste
            // memory and mask a future component reusing the same key.
            self.kept_cache.clear();
        }
        if resimulated {
            self.simulate_kept(topo);
        } else {
            self.scratch.kept_now.clear();
        }
        for &eid32 in &self.scratch.kept_now {
            let eid = eid32 as usize;
            if self.removed[eid] {
                self.removed[eid] = false;
                self.scratch.candidates.push((self.eid_key[eid], eid as u32, false));
            }
        }
        for &eid32 in &self.kept {
            let eid = eid32 as usize;
            if self.scratch.kept_now.binary_search(&eid32).is_err()
                && self.slated_cnt[eid] > 0
                && !self.removed[eid]
            {
                self.removed[eid] = true;
                self.scratch.candidates.push((self.eid_key[eid], eid as u32, false));
            }
        }
        // Swap the kept buffers: the old verdict becomes next step's
        // scratch, the new one is retained.
        let kept_now = std::mem::take(&mut self.scratch.kept_now);
        self.scratch.kept_now = std::mem::replace(&mut self.kept, kept_now);
        drop(guard_span);

        let reconcile_span = telemetry::span("rewire.reconcile");
        // Reconcile candidate edges against the live graph:
        // present in G_t  <=>  selected for addition, or a surviving base
        // edge. Addition keys and base-edge keys are disjoint, so each
        // candidate resolves through exactly one table. Candidates are
        // sorted and deduplicated (duplicates are bit-identical), so the
        // delta lists are deterministic and the flips ascend by edge key,
        // satisfying the sorted-flips contract of
        // `GraphTensors::apply_flips` by construction.
        self.scratch.candidates.sort_unstable();
        self.scratch.candidates.dedup();
        self.scratch.flips.clear();
        for &(key, idx, is_add) in &self.scratch.candidates {
            let (u, v) = unkey(key);
            let desired =
                if is_add { self.add_cnt[idx as usize] > 0 } else { !self.removed[idx as usize] };
            let current = self.tensors.graph().has_edge(u, v);
            if desired && !current {
                out.added.push((u, v));
                self.scratch.flips.push((u, v, true));
            } else if !desired && current {
                out.removed.push((u, v));
                self.scratch.flips.push((u, v, false));
            }
        }

        let g = self.tensors.graph();
        for &(u, v) in &out.removed {
            if g.label(u) == g.label(v) {
                self.same_label -= 1;
            }
        }
        for &(u, v) in &out.added {
            if g.label(u) == g.label(v) {
                self.same_label += 1;
            }
        }
        drop(reconcile_span);
        {
            let _op_span = telemetry::span("rewire.operators");
            self.tensors.apply_flips(&self.scratch.flips);
        }

        telemetry::counter("rewire.applies", 1);
        telemetry::counter("rewire.edges_added", out.added.len() as u64);
        telemetry::counter("rewire.edges_removed", out.removed.len() as u64);
        if resimulated {
            telemetry::counter("rewire.resimulations", 1);
        } else {
            telemetry::counter("rewire.fast_updates", 1);
        }

        out.resimulated = resimulated;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_entropy::{
        CandidatePool, EntropySequences, RelativeEntropyConfig, RelativeEntropyTable,
        SequenceConfig,
    };
    use graphrare_tensor::Matrix;

    fn path_optimizer(mode: EditMode) -> TopologyOptimizer {
        path_optimizer_with(mode, 8)
    }

    fn path_optimizer_with(mode: EditMode, max_additions: usize) -> TopologyOptimizer {
        // Path 0-1-2-3-4-5; features make far nodes {0,5} similar.
        let mut feats = Matrix::zeros(6, 2);
        for v in [0usize, 5] {
            feats.set(v, 0, 1.0);
        }
        for v in 1..5 {
            feats.set(v, 1, 1.0);
        }
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            feats,
            vec![0, 1, 1, 1, 1, 0],
            2,
        );
        let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let seqs = EntropySequences::build(
            &g,
            &table,
            &SequenceConfig { pool: CandidatePool::RemoteRing { hops: 5 }, max_additions },
        );
        TopologyOptimizer::new(g, seqs, mode)
    }

    /// Full-strength equality check against the reference path.
    fn assert_matches_materialize(rw: &RewiredGraph, topo: &TopologyOptimizer, state: &TopoState) {
        let want = topo.materialize(state);
        assert_eq!(rw.graph().edge_vec(), want.edge_vec(), "edge sets diverge");
        assert_eq!(rw.num_edges(), want.num_edges());
        assert_eq!(
            rw.homophily_ratio().to_bits(),
            metrics::homophily_ratio(&want).to_bits(),
            "homophily diverges"
        );
        let fresh = GraphTensors::new(&want);
        assert_eq!(*rw.tensors().gcn_norm(), *fresh.gcn_norm(), "gcn operator diverges");
        assert_eq!(*rw.tensors().two_hop(), *fresh.two_hop(), "two-hop operator diverges");
    }

    #[test]
    fn fresh_rewired_graph_is_base() {
        let topo = path_optimizer(EditMode::Both);
        let rw = RewiredGraph::new(&topo);
        assert_eq!(rw.graph().edge_vec(), topo.base().edge_vec());
        assert_eq!(rw.homophily_ratio().to_bits(), metrics::homophily_ratio(topo.base()).to_bits());
    }

    #[test]
    fn additions_and_reversal() {
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        // Operators built up-front so every transition exercises patching.
        rw.tensors().gcn_norm();
        rw.tensors().two_hop();
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        state.set_k(0, 2);
        state.set_k(3, 1);
        let delta = rw.apply(&topo, &state).unwrap();
        assert!(!delta.added.is_empty());
        assert_matches_materialize(&rw, &topo, &state);
        // Walk back down to S0.
        state.set_k(0, 0);
        state.set_k(3, 0);
        let delta = rw.apply(&topo, &state).unwrap();
        assert!(delta.removed.len() >= delta.added.len());
        assert_matches_materialize(&rw, &topo, &state);
        assert_eq!(rw.graph().edge_vec(), topo.base().edge_vec());
    }

    #[test]
    fn kept_cache_reuses_and_invalidates() {
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let n = topo.base().num_nodes();
        let k_max = vec![2u16; n];
        let d_max: Vec<u16> = (0..n).map(|v| topo.base().degree(v) as u16).collect();
        let mut state = TopoState::new(k_max, d_max);
        for v in 0..n {
            state.set_d(v, state.d_max(v));
        }
        // Slating every edge makes the whole path one risky component.
        assert!(rw.apply(&topo, &state).unwrap().resimulated);
        assert_matches_materialize(&rw, &topo, &state);
        let entry = rw.kept_cache.get(&0).expect("whole path is one risky component");
        assert_eq!(entry.members, (0..n).collect::<Vec<_>>());
        assert!(!entry.kept.is_empty(), "the leaf guard must keep edges");
        let reused = entry.kept.as_ptr();
        // Addition-only transition: no deletion prefix changed, so the
        // verdict must be served from the cache (entry not rebuilt).
        state.set_k(0, 1);
        rw.apply(&topo, &state).unwrap();
        assert_matches_materialize(&rw, &topo, &state);
        let entry = rw.kept_cache.get(&0).expect("component unchanged");
        assert_eq!(entry.kept.as_ptr(), reused, "unchanged component must hit the cache");
        // Shrinking a member's prefix changes the snapshot: the stale
        // verdict must be re-derived (the entry now carries the new d).
        state.set_d(2, 1);
        rw.apply(&topo, &state).unwrap();
        assert_matches_materialize(&rw, &topo, &state);
        let entry = rw.kept_cache.get(&0).expect("component persists");
        assert!(entry.dsnap.contains(&(2, 1)), "entry must re-derive with the shrunk prefix");
        // Growing the prefix back is a second invalidation.
        state.set_d(2, 2);
        rw.apply(&topo, &state).unwrap();
        assert_matches_materialize(&rw, &topo, &state);
        let entry = rw.kept_cache.get(&0).expect("component persists");
        assert!(entry.dsnap.contains(&(2, 2)), "entry must re-derive with the grown prefix");
        // Releasing every deletion empties the census and clears the cache.
        state.reset();
        rw.apply(&topo, &state).unwrap();
        assert_matches_materialize(&rw, &topo, &state);
        assert!(rw.kept_cache.is_empty(), "cache must clear when the census empties");
    }

    #[test]
    fn deletion_guard_cascade_is_exact() {
        // On a path graph every interior deletion threatens a leaf: slating
        // d(1) = d_max covers both of node 1's edges, making nodes 0 and 1
        // risky, so the engine must fall back to simulation — and still
        // match the sequential guard semantics bit for bit.
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let n = topo.base().num_nodes();
        let k_max = vec![0u16; n];
        let d_max: Vec<u16> = (0..n).map(|v| topo.base().degree(v) as u16).collect();
        let mut state = TopoState::new(k_max, d_max);
        for v in 0..n {
            state.set_d(v, state.d_max(v));
        }
        let delta = rw.apply(&topo, &state).unwrap();
        assert!(delta.resimulated, "guard-threatening trace must re-simulate");
        assert_matches_materialize(&rw, &topo, &state);
        // Releasing the deletions must recover the base graph through the
        // resync branch (removed != slated on the previous transition).
        state.reset();
        rw.apply(&topo, &state).unwrap();
        assert_matches_materialize(&rw, &topo, &state);
        assert_eq!(rw.graph().edge_vec(), topo.base().edge_vec());
    }

    #[test]
    fn fast_path_used_when_no_isolation_risk() {
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        // Node 2 slates one of two edges: every endpoint keeps a spare.
        state.set_d(2, 1);
        let delta = rw.apply(&topo, &state).unwrap();
        assert!(!delta.resimulated, "guard-free trace must take the fast path");
        assert_eq!(delta.removed.len(), 1);
        assert_matches_materialize(&rw, &topo, &state);
    }

    #[test]
    fn add_only_mode_ignores_deletions() {
        let topo = path_optimizer(EditMode::AddOnly);
        let mut rw = RewiredGraph::new(&topo);
        // Hand-built state with non-zero d: the mode gate must ignore it,
        // exactly as materialize does.
        let n = topo.base().num_nodes();
        let mut state = TopoState::new(vec![4; n], vec![4; n]);
        state.set_k(0, 1);
        state.set_d(2, 1);
        let delta = rw.apply(&topo, &state).unwrap();
        assert!(delta.removed.is_empty());
        assert_matches_materialize(&rw, &topo, &state);
    }

    #[test]
    fn remove_only_mode_ignores_additions() {
        let topo = path_optimizer(EditMode::RemoveOnly);
        let mut rw = RewiredGraph::new(&topo);
        let n = topo.base().num_nodes();
        let mut state = TopoState::new(vec![4; n], vec![4; n]);
        state.set_k(0, 2);
        state.set_d(2, 1);
        let delta = rw.apply(&topo, &state).unwrap();
        assert!(delta.added.is_empty());
        assert_matches_materialize(&rw, &topo, &state);
    }

    #[test]
    fn arbitrary_state_jumps_converge() {
        // Checkpoint restores jump counters arbitrarily; the engine must
        // land on materialize's output regardless of the path taken.
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        let jumps: &[&[(usize, usize, usize)]] = &[
            &[(0, 3, 0), (5, 2, 0)],
            &[(0, 0, 0), (2, 1, 1), (3, 0, 1)],
            &[(1, 2, 0), (4, 1, 1)],
            &[],
        ];
        for jump in jumps {
            state.reset();
            for &(v, k, d) in *jump {
                state.set_k(v, k);
                state.set_d(v, d);
            }
            rw.apply(&topo, &state).unwrap();
            assert_matches_materialize(&rw, &topo, &state);
        }
    }

    #[test]
    fn reapplying_same_state_is_a_noop() {
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        state.set_k(1, 2);
        state.set_d(2, 1);
        rw.apply(&topo, &state).unwrap();
        let delta = rw.apply(&topo, &state).unwrap();
        assert!(delta.is_empty());
        assert!(!delta.resimulated);
        assert_matches_materialize(&rw, &topo, &state);
    }

    #[test]
    fn apply_into_reuses_delta_buffers() {
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        let mut delta = RewireDelta::default();
        state.set_k(0, 2);
        rw.apply_into(&topo, &state, &mut delta).unwrap();
        assert!(!delta.added.is_empty());
        assert_matches_materialize(&rw, &topo, &state);
        // The same buffer absorbs the reverse transition.
        state.set_k(0, 0);
        rw.apply_into(&topo, &state, &mut delta).unwrap();
        assert!(delta.added.is_empty());
        assert!(!delta.removed.is_empty());
        assert_matches_materialize(&rw, &topo, &state);
    }

    #[test]
    fn sequence_skew_is_a_typed_error_not_a_panic() {
        // Anchor on an optimiser with short addition rankings, then apply
        // a state against one with longer rankings for the same graph —
        // the version-skew shape a stale checkpoint restore produces.
        let short = path_optimizer_with(EditMode::Both, 1);
        let long = path_optimizer_with(EditMode::Both, 8);
        let mut rw = RewiredGraph::new(&short);
        let mut state = TopoState::new(long.k_bounds(8), long.d_bounds(8));
        assert!(state.k_max(0) >= 2, "fixture must allow k(0) = 2");
        state.set_k(0, 2);
        let err = rw.apply(&long, &state).unwrap_err();
        assert_eq!(err, RewireError::SequenceSkew { node: 0 });
        assert!(err.to_string().contains("sequence skew"));
    }

    #[test]
    fn rewire_error_messages_name_the_edge() {
        let add = RewireError::AdditionUnderflow { u: 3, v: 7 };
        assert!(add.to_string().contains("3-7"));
        let del = RewireError::DeletionUnderflow { u: 1, v: 2 };
        assert!(del.to_string().contains("deletion refcount underflow"));
    }

    #[test]
    fn rebase_reanchors_on_live_graph() {
        // Drive the engine away from the base, then re-anchor it on a new
        // optimiser whose base IS the live graph (the entropy-refresh
        // boundary). Subsequent transitions must match materialize against
        // the new optimiser exactly, with no operator rebuild in between.
        let topo = path_optimizer(EditMode::Both);
        let mut rw = RewiredGraph::new(&topo);
        rw.tensors().gcn_norm();
        let mut state = TopoState::new(topo.k_bounds(8), topo.d_bounds(8));
        state.set_k(0, 2);
        state.set_d(2, 1);
        rw.apply(&topo, &state).unwrap();
        assert_matches_materialize(&rw, &topo, &state);
        assert_ne!(rw.graph().edge_vec(), topo.base().edge_vec());

        // Fresh sequences against the live graph, as refresh_sequences does.
        let live = rw.graph().clone();
        let table = RelativeEntropyTable::new(&live, &RelativeEntropyConfig::default());
        let seqs = EntropySequences::build(
            &live,
            &table,
            &SequenceConfig { pool: CandidatePool::RemoteRing { hops: 5 }, max_additions: 8 },
        );
        let topo2 = TopologyOptimizer::new(live, seqs, EditMode::Both);
        rw.rebase(&topo2);
        let mut state2 = TopoState::new(topo2.k_bounds(8), topo2.d_bounds(8));
        // S_0 of the new anchoring: the live graph itself.
        assert_matches_materialize(&rw, &topo2, &state2);
        // And transitions resume from there, including walking back to the
        // (new) base.
        state2.set_k(3, 1);
        state2.set_d(0, 1);
        rw.apply(&topo2, &state2).unwrap();
        assert_matches_materialize(&rw, &topo2, &state2);
        state2.reset();
        rw.apply(&topo2, &state2).unwrap();
        assert_matches_materialize(&rw, &topo2, &state2);
        assert_eq!(rw.graph().edge_vec(), topo2.base().edge_vec());
    }
}
