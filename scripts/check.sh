#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, and the whole test suite.
# CI and pre-push runs should both go through this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "All checks passed."
