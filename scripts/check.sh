#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, the whole test suite, and
# a telemetry smoke of the CLI. CI and pre-push runs should both go
# through this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> NaN-ordering lint (partial_cmp must not drive sort/argmax)"
# A `partial_cmp` comparator panics (`.unwrap()`) or silently destabilises
# the ordering (`.unwrap_or(Equal)`) as soon as a NaN reaches it; ranking
# and argmax code must use `total_cmp`. The 3-line window after each
# sort/max/min call site catches multi-line closures. Extend the allowlist
# (one regex alternative per site) only with a justification for why the
# site can never see NaN.
nan_allowlist='^$' # no allowed sites
nan_hits="$(grep -rn --include='*.rs' -E -A3 '\.(sort(_unstable)?_by|max_by|min_by)\(' \
    crates src tests examples 2>/dev/null |
    grep 'partial_cmp(' | grep -Ev "$nan_allowlist" || true)"
if [ -n "$nan_hits" ]; then
    echo "NaN-unsafe ordering(s) found; use f32::total_cmp / f64::total_cmp:" >&2
    echo "$nan_hits" >&2
    exit 1
fi

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> telemetry suite"
cargo test -q -p graphrare-telemetry
cargo test -q -p graphrare --test telemetry

echo "==> CLI telemetry smoke (--telemetry-out JSONL must validate)"
cargo build -q --release -p graphrare --bin graphrare
cargo build -q --release -p graphrare-bench --bin telemetry_lint
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
target/release/telemetry_lint --make-fixture "$smoke_dir/toy"
target/release/graphrare \
    --input "$smoke_dir/toy" \
    --steps 6 --seed 1 --quiet \
    --telemetry-out "$smoke_dir/events.jsonl"
target/release/telemetry_lint "$smoke_dir/events.jsonl"
# Same smoke with entropy refreshes enabled, so the `entropy_refresh` and
# `sequence_refresh` events pass through the lint too.
target/release/graphrare \
    --input "$smoke_dir/toy" \
    --steps 6 --seed 1 --quiet --entropy-refresh-every 2 \
    --telemetry-out "$smoke_dir/events_refresh.jsonl"
target/release/telemetry_lint "$smoke_dir/events_refresh.jsonl"
grep -q '"event": *"sequence_refresh"' "$smoke_dir/events_refresh.jsonl" ||
    { echo "expected sequence_refresh events in the refresh-enabled smoke" >&2; exit 1; }

echo "==> checkpoint/resume smoke (killed run must match uninterrupted run)"
cargo build -q --release -p graphrare-bench --bin store_dump
target/release/graphrare \
    --input "$smoke_dir/toy" \
    --steps 6 --seed 1 --quiet \
    --checkpoint-every 2 --checkpoint-dir "$smoke_dir/ckpts" \
    > "$smoke_dir/full.out"
# Simulate a crash after step 4: drop the final checkpoint, resume, and
# require byte-identical stdout.
rm "$smoke_dir/ckpts/step-000006.grrs"
target/release/graphrare \
    --input "$smoke_dir/toy" \
    --steps 6 --seed 1 --quiet \
    --checkpoint-every 2 --checkpoint-dir "$smoke_dir/ckpts" --resume \
    > "$smoke_dir/resumed.out"
diff "$smoke_dir/full.out" "$smoke_dir/resumed.out"
target/release/store_dump "$smoke_dir/ckpts/step-000006.grrs"

echo "==> trace profiler smoke (flame/percentiles parse; self-diff gates at 0%)"
cargo build -q --release -p graphrare-trace --bin graphrare-trace
# Folded stacks from the CLI smoke's stream: every line must be
# `stack;frames SELF_NS`, and the driver.run root must be present.
target/release/graphrare-trace flame "$smoke_dir/events.jsonl" > "$smoke_dir/stacks.folded"
awk 'NF != 2 || $2 !~ /^[0-9]+$/ { print "bad folded line: " $0; bad = 1 } END { exit bad }' \
    "$smoke_dir/stacks.folded"
grep -q '^driver\.run ' "$smoke_dir/stacks.folded" ||
    { echo "folded stacks missing the driver.run root" >&2; exit 1; }
target/release/graphrare-trace percentiles "$smoke_dir/events.jsonl" > "$smoke_dir/percentiles.txt"
grep -q 'driver\.run/driver\.step' "$smoke_dir/percentiles.txt" ||
    { echo "percentile table missing the driver.step path" >&2; exit 1; }
target/release/graphrare-trace timeline "$smoke_dir/events.jsonl" > /dev/null
# Regression gate sanity: a run diffed against itself has zero delta on
# every path, so the strictest possible threshold must pass.
target/release/graphrare-trace diff "$smoke_dir/events.jsonl" "$smoke_dir/events.jsonl" \
    --max-regress 0% > /dev/null

echo "==> incremental rewiring smoke (full vs incremental must be bit-identical)"
cargo build -q --release -p graphrare-bench --bin bench_rewire
# The binary lock-steps RewiredGraph against materialize + fresh tensors
# over both action regimes and exits non-zero on any divergence.
target/release/bench_rewire --quick --check-only --output "$smoke_dir/bench_rewire.json"

echo "==> incremental entropy smoke (per-row refresh vs full rebuild must be bit-identical)"
cargo build -q --release -p graphrare-bench --bin bench_entropy
# The binary lock-steps IncrementalEntropy's per-row path against its
# wholesale fallback (a from-scratch rebuild) over both candidate pools
# and exits non-zero on any divergence in H bits or rankings.
target/release/bench_entropy --quick --check-only --output "$smoke_dir/bench_entropy.json"

echo "All checks passed."
