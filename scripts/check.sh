#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, the whole test suite, and
# a telemetry smoke of the CLI. CI and pre-push runs should both go
# through this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> NaN-ordering lint (partial_cmp must not drive sort/argmax)"
# A `partial_cmp` comparator panics (`.unwrap()`) or silently destabilises
# the ordering (`.unwrap_or(Equal)`) as soon as a NaN reaches it; ranking
# and argmax code must use `total_cmp`. The 3-line window after each
# sort/max/min call site catches multi-line closures. Extend the allowlist
# (one regex alternative per site) only with a justification for why the
# site can never see NaN.
nan_allowlist='^$' # no allowed sites
nan_hits="$(grep -rn --include='*.rs' -E -A3 '\.(sort(_unstable)?_by|max_by|min_by)\(' \
    crates src tests examples 2>/dev/null |
    grep 'partial_cmp(' | grep -Ev "$nan_allowlist" || true)"
if [ -n "$nan_hits" ]; then
    echo "NaN-unsafe ordering(s) found; use f32::total_cmp / f64::total_cmp:" >&2
    echo "$nan_hits" >&2
    exit 1
fi

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> telemetry suite"
cargo test -q -p graphrare-telemetry
cargo test -q -p graphrare --test telemetry

echo "==> CLI telemetry smoke (--telemetry-out JSONL must validate)"
cargo build -q --release -p graphrare --bin graphrare
cargo build -q --release -p graphrare-bench --bin telemetry_lint
smoke_dir="$(mktemp -d)"
serve_pid=""
serve2_pid=""
# Also reap any serving daemon a failed smoke leaves behind.
trap 'kill ${serve_pid:-} ${serve2_pid:-} 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
target/release/telemetry_lint --make-fixture "$smoke_dir/toy"
target/release/graphrare \
    --input "$smoke_dir/toy" \
    --steps 6 --seed 1 --quiet \
    --telemetry-out "$smoke_dir/events.jsonl"
target/release/telemetry_lint "$smoke_dir/events.jsonl"
# Same smoke with entropy refreshes enabled, so the `entropy_refresh` and
# `sequence_refresh` events pass through the lint too.
target/release/graphrare \
    --input "$smoke_dir/toy" \
    --steps 6 --seed 1 --quiet --entropy-refresh-every 2 \
    --telemetry-out "$smoke_dir/events_refresh.jsonl"
target/release/telemetry_lint "$smoke_dir/events_refresh.jsonl"
grep -q '"event": *"sequence_refresh"' "$smoke_dir/events_refresh.jsonl" ||
    { echo "expected sequence_refresh events in the refresh-enabled smoke" >&2; exit 1; }

echo "==> checkpoint/resume smoke (killed run must match uninterrupted run)"
cargo build -q --release -p graphrare-bench --bin store_dump
target/release/graphrare \
    --input "$smoke_dir/toy" \
    --steps 6 --seed 1 --quiet \
    --checkpoint-every 2 --checkpoint-dir "$smoke_dir/ckpts" \
    > "$smoke_dir/full.out"
# Simulate a crash after step 4: drop the final checkpoint, resume, and
# require byte-identical stdout.
rm "$smoke_dir/ckpts/step-000006.grrs"
target/release/graphrare \
    --input "$smoke_dir/toy" \
    --steps 6 --seed 1 --quiet \
    --checkpoint-every 2 --checkpoint-dir "$smoke_dir/ckpts" --resume \
    > "$smoke_dir/resumed.out"
diff "$smoke_dir/full.out" "$smoke_dir/resumed.out"
target/release/store_dump "$smoke_dir/ckpts/step-000006.grrs"

echo "==> trace profiler smoke (flame/percentiles parse; self-diff gates at 0%)"
cargo build -q --release -p graphrare-trace --bin graphrare-trace
# Folded stacks from the CLI smoke's stream: every line must be
# `stack;frames SELF_NS`, and the driver.run root must be present.
target/release/graphrare-trace flame "$smoke_dir/events.jsonl" > "$smoke_dir/stacks.folded"
awk 'NF != 2 || $2 !~ /^[0-9]+$/ { print "bad folded line: " $0; bad = 1 } END { exit bad }' \
    "$smoke_dir/stacks.folded"
grep -q '^driver\.run ' "$smoke_dir/stacks.folded" ||
    { echo "folded stacks missing the driver.run root" >&2; exit 1; }
target/release/graphrare-trace percentiles "$smoke_dir/events.jsonl" > "$smoke_dir/percentiles.txt"
grep -q 'driver\.run/driver\.step' "$smoke_dir/percentiles.txt" ||
    { echo "percentile table missing the driver.step path" >&2; exit 1; }
target/release/graphrare-trace timeline "$smoke_dir/events.jsonl" > /dev/null
# Regression gate sanity: a run diffed against itself has zero delta on
# every path, so the strictest possible threshold must pass.
target/release/graphrare-trace diff "$smoke_dir/events.jsonl" "$smoke_dir/events.jsonl" \
    --max-regress 0% > /dev/null

echo "==> rewire perf gate (rewire.* span totals vs committed baseline)"
# The smoke above is deterministic (fixed fixture, fixed seed), so its
# rewire.* span totals are comparable to a committed baseline of the
# same invocation. The threshold is deliberately loose and the noise
# floor exempts sub-50µs paths: absolute times vary across machines,
# and the gate only has to catch order-of-magnitude regressions (e.g.
# reintroducing per-step allocation in the hot loop). Regenerate with:
#   target/release/telemetry_lint --make-fixture DIR/toy
#   target/release/graphrare --input DIR/toy --steps 6 --seed 1 --quiet \
#       --telemetry-out scripts/baselines/rewire_smoke.jsonl
if ! target/release/graphrare-trace diff scripts/baselines/rewire_smoke.jsonl \
    "$smoke_dir/events.jsonl" --path-prefix rewire. --max-regress 300% \
    --min-total-ns 50000 > "$smoke_dir/rewire_gate.txt"; then
    cat "$smoke_dir/rewire_gate.txt" >&2
    echo "rewire.* spans regressed past the gate; see table above" >&2
    exit 1
fi

echo "==> incremental rewiring smoke (full vs incremental must be bit-identical)"
cargo build -q --release -p graphrare-bench --bin bench_rewire
# The binary lock-steps RewiredGraph against materialize + fresh tensors
# over every strategy x regime cell and exits non-zero on any divergence.
target/release/bench_rewire --quick --check-only --output "$smoke_dir/bench_rewire.json"

echo "==> rewirer arena smoke (every --rewirer strategy end-to-end; matrix rows present)"
# Each strategy drives a short run through the CLI and must produce a
# result line; the quick bench report above must carry one matrix row
# per strategy x regime cell and one arena row per strategy.
for strategy in ppo dhgr reference none; do
    target/release/graphrare --input "$smoke_dir/toy" --steps 6 --seed 1 --quiet \
        --rewirer "$strategy" > "$smoke_dir/rewirer_$strategy.out"
    grep -q 'test accuracy' "$smoke_dir/rewirer_$strategy.out" ||
        { echo "strategy $strategy produced no result line" >&2; exit 1; }
    for regime in dense sparse; do
        grep -q "\"strategy\": \"$strategy\", \"regime\": \"$regime\"" \
            "$smoke_dir/bench_rewire.json" ||
            { echo "bench_rewire.json missing $strategy x $regime row" >&2; exit 1; }
    done
    grep -q "{\"strategy\": \"$strategy\", \"best_val_acc\"" "$smoke_dir/bench_rewire.json" ||
        { echo "bench_rewire.json missing arena row for $strategy" >&2; exit 1; }
done

echo "==> incremental entropy smoke (per-row refresh vs full rebuild must be bit-identical)"
cargo build -q --release -p graphrare-bench --bin bench_entropy
# The binary lock-steps IncrementalEntropy's per-row path against its
# wholesale fallback (a from-scratch rebuild) over both candidate pools
# and exits non-zero on any divergence in H bits or rankings.
target/release/bench_entropy --quick --check-only --output "$smoke_dir/bench_entropy.json"

echo "==> serving daemon smoke (concurrent runs bit-identical to solo; kill -9 resume)"
cargo build -q --release -p graphrare-serve --bin graphrare-serve --bin graphrare-client
serve_dir="$smoke_dir/serve"
mkdir -p "$serve_dir"
sock="$serve_dir/daemon.sock"
client() { target/release/graphrare-client --connect "unix:$sock" "$@"; }

# Daemon lifetime 1: it will be killed with -9 mid-run, which truncates
# any buffered JSONL mid-line, so only the graceful lifetime below gets
# a --telemetry-out stream to lint.
target/release/graphrare-serve --listen "unix:$sock" --state-dir "$serve_dir/state" \
    --max-runs 2 --checkpoint-every 2 --quiet &
serve_pid=$!
for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.05; done
[ -S "$sock" ] || { echo "daemon socket never appeared" >&2; exit 1; }

# Two concurrent runs watched to completion; their fetched artifacts
# must be byte-identical to solo CLI runs of the same specs.
run1=$(client submit --input "$smoke_dir/toy" --steps 6 --seed 1 --threads 1 | sed -n 's/^run_id=//p')
run2=$(client submit --input "$smoke_dir/toy" --steps 6 --seed 2 --threads 1 | sed -n 's/^run_id=//p')
client watch "$run1" > /dev/null 2>&1
client watch "$run2" > /dev/null 2>&1
client result "$run1" --out "$serve_dir/served-1.grrs" > /dev/null
client result "$run2" --out "$serve_dir/served-2.grrs" > /dev/null
target/release/graphrare --input "$smoke_dir/toy" --steps 6 --seed 1 --threads 1 --quiet \
    --save-model "$serve_dir/solo-1.grrs" > /dev/null
target/release/graphrare --input "$smoke_dir/toy" --steps 6 --seed 2 --threads 1 --quiet \
    --save-model "$serve_dir/solo-2.grrs" > /dev/null
cmp "$serve_dir/served-1.grrs" "$serve_dir/solo-1.grrs"
cmp "$serve_dir/served-2.grrs" "$serve_dir/solo-2.grrs"

# Run 3 is paced: advance it to step 4 (past two checkpoints), then
# kill the daemon outright — no chance to checkpoint on the way down.
run3=$(client submit --input "$smoke_dir/toy" --steps 6 --seed 3 --threads 1 --paced | sed -n 's/^run_id=//p')
client budget "$run3" 4 > /dev/null
step=""
for _ in $(seq 200); do
    step=$(client status "$run3" | sed -n 's/^step=//p')
    [ "$step" = 4 ] && break
    sleep 0.05
done
[ "$step" = 4 ] || { echo "run $run3 never reached step 4" >&2; exit 1; }
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true

# Daemon lifetime 2 over the same state dir: run 3 comes back from its
# newest checkpoint and finishes bit-identical to an uninterrupted solo
# run. This lifetime streams telemetry for the lint below.
target/release/graphrare-serve --listen "unix:$sock" --state-dir "$serve_dir/state" \
    --max-runs 2 --checkpoint-every 2 --quiet \
    --telemetry-out "$serve_dir/serve-events.jsonl" &
serve2_pid=$!
for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.05; done
[ -S "$sock" ] || { echo "restarted daemon socket never appeared" >&2; exit 1; }
client budget "$run3" 6 > /dev/null
client watch "$run3" > /dev/null 2>&1
client result "$run3" --out "$serve_dir/served-3.grrs" > /dev/null
target/release/graphrare --input "$smoke_dir/toy" --steps 6 --seed 3 --threads 1 --quiet \
    --save-model "$serve_dir/solo-3.grrs" > /dev/null
cmp "$serve_dir/served-3.grrs" "$serve_dir/solo-3.grrs"

# Graceful shutdown must flush telemetry and exit 0 (wait propagates a
# non-zero daemon exit through set -e).
client shutdown > /dev/null
wait "$serve2_pid"
target/release/telemetry_lint "$serve_dir/serve-events.jsonl"
# The daemon's single stream demultiplexes by run id: the resumed run's
# driver spans are there under its tag.
target/release/graphrare-trace flame "$serve_dir/serve-events.jsonl" --run-id "$run3" |
    grep -q '^driver\.run' ||
    { echo "run $run3 spans missing from daemon telemetry" >&2; exit 1; }

echo "All checks passed."
