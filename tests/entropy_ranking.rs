//! Integration tests of the entropy pipeline's *ranking quality* — the
//! property GraphRARE actually consumes: same-class nodes must rank above
//! cross-class nodes in each node's candidate sequence.

use graphrare_datasets::{generate_spec, DatasetSpec};
use graphrare_entropy::{
    CandidatePool, Embedding, EntropySequences, RelativeEntropyConfig, RelativeEntropyTable,
    SequenceConfig,
};
use graphrare_graph::Graph;

fn strong_signal_graph(seed: u64) -> Graph {
    let spec = DatasetSpec {
        name: "ranking",
        num_nodes: 90,
        num_edges: 220,
        feat_dim: 32,
        num_classes: 3,
        homophily: 0.15,
        degree_exponent: 0.3,
        feature_signal: 0.9,
        feature_density: 0.04,
    };
    generate_spec(&spec, seed)
}

/// Fraction of top-5 addition candidates sharing the ego node's label.
fn precision_at_5(g: &Graph, seqs: &EntropySequences) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for v in 0..g.num_nodes() {
        for &(u, _) in seqs.additions(v).iter().take(5) {
            total += 1;
            if g.label(u as usize) == g.label(v) {
                hits += 1;
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

#[test]
fn entropy_ranking_beats_class_base_rate() {
    let g = strong_signal_graph(1);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let seqs = EntropySequences::build(&g, &table, &SequenceConfig::default());
    let p5 = precision_at_5(&g, &seqs);
    // Base rate for 3 balanced classes is ~1/3.
    assert!(p5 > 0.6, "precision@5 = {p5:.3}, barely above base rate");
}

#[test]
fn entropy_ranking_beats_shuffled_ranking() {
    let g = strong_signal_graph(2);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let seqs = EntropySequences::build(&g, &table, &SequenceConfig::default());
    let shuffled = seqs.shuffled(7);
    let real = precision_at_5(&g, &seqs);
    let random = precision_at_5(&g, &shuffled);
    assert!(
        real > random + 0.1,
        "entropy ranking ({real:.3}) not clearly above shuffled ({random:.3})"
    );
}

#[test]
fn feature_only_and_structure_only_bracket_the_default() {
    // λ = 0 is pure feature ranking: with informative features it must
    // still beat chance.
    let g = strong_signal_graph(3);
    let cfg = RelativeEntropyConfig { lambda: 0.0, ..Default::default() };
    let table = RelativeEntropyTable::new(&g, &cfg);
    let seqs = EntropySequences::build(&g, &table, &SequenceConfig::default());
    assert!(precision_at_5(&g, &seqs) > 0.5);
}

#[test]
fn random_projection_embedding_preserves_ranking_quality() {
    let g = strong_signal_graph(4);
    let cfg = RelativeEntropyConfig {
        embedding: Embedding::RandomProjection { dim: 16, seed: 5 },
        ..Default::default()
    };
    let table = RelativeEntropyTable::new(&g, &cfg);
    let seqs = EntropySequences::build(&g, &table, &SequenceConfig::default());
    assert!(precision_at_5(&g, &seqs) > 0.5);
}

#[test]
fn global_sample_pool_matches_ring_quality_on_small_graphs() {
    let g = strong_signal_graph(5);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let ring = EntropySequences::build(&g, &table, &SequenceConfig::default());
    let sample = EntropySequences::build(
        &g,
        &table,
        &SequenceConfig {
            pool: CandidatePool::GlobalSample { per_node: 40, seed: 3 },
            max_additions: 16,
        },
    );
    let ring_p = precision_at_5(&g, &ring);
    let sample_p = precision_at_5(&g, &sample);
    assert!(
        (ring_p - sample_p).abs() < 0.3,
        "pools disagree wildly: ring {ring_p:.3}, sample {sample_p:.3}"
    );
    assert!(sample_p > 0.5);
}

#[test]
fn dense_matrix_diagonal_is_maximal_per_row() {
    // H(v, v) combines maximal feature similarity (clamped 1.0 after
    // rescale) and maximal structural similarity (JS = 0), so the diagonal
    // should dominate its row.
    let g = strong_signal_graph(6);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let m = table.dense_matrix();
    for v in 0..g.num_nodes() {
        let diag = m.get(v, v);
        for u in 0..g.num_nodes() {
            assert!(
                diag >= m.get(v, u) - 1e-4,
                "H({v},{v}) = {diag} < H({v},{u}) = {}",
                m.get(v, u)
            );
        }
    }
}
