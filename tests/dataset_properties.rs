//! Integration tests of the dataset generators against Table II and the
//! split protocol of Sec. V-C.

use graphrare_datasets::{generate_mini, generate_spec, ten_splits, Dataset};
use graphrare_graph::metrics::{class_counts, homophily_ratio};

#[test]
fn mini_generators_hit_their_homophily_targets() {
    for d in Dataset::ALL {
        let spec = d.spec_mini();
        let g = generate_mini(d, 42);
        let h = homophily_ratio(&g);
        assert!(
            (h - spec.homophily).abs() < 0.08,
            "{}: homophily {h:.3}, target {:.3}",
            d.name(),
            spec.homophily
        );
        assert_eq!(g.num_nodes(), spec.num_nodes, "{}", d.name());
        assert_eq!(g.num_classes(), spec.num_classes, "{}", d.name());
    }
}

#[test]
fn full_scale_webkb_datasets_match_table2_exactly() {
    // The three WebKB graphs are small enough to generate at full scale.
    for (d, nodes, edges) in
        [(Dataset::Cornell, 183, 295), (Dataset::Texas, 183, 309), (Dataset::Wisconsin, 251, 499)]
    {
        let g = generate_spec(&d.spec(), 7);
        assert_eq!(g.num_nodes(), nodes, "{}", d.name());
        let rel = (g.num_edges() as f64 - edges as f64).abs() / edges as f64;
        assert!(rel < 0.03, "{}: {} edges vs target {edges}", d.name(), g.num_edges());
        assert_eq!(g.feat_dim(), 1703, "{}", d.name());
    }
}

#[test]
fn full_scale_cora_statistics() {
    let g = generate_spec(&Dataset::Cora.spec(), 13);
    assert_eq!(g.num_nodes(), 2708);
    assert_eq!(g.feat_dim(), 1433);
    assert_eq!(g.num_classes(), 7);
    let h = homophily_ratio(&g);
    assert!((h - 0.81).abs() < 0.05, "Cora homophily {h:.3}");
}

#[test]
fn heterophilic_list_is_consistent_with_specs() {
    for d in Dataset::HETEROPHILIC {
        assert!(d.spec().homophily < 0.5, "{} listed heterophilic", d.name());
    }
    assert!(Dataset::Cora.spec().homophily > 0.5);
    assert!(Dataset::Pubmed.spec().homophily > 0.5);
}

#[test]
fn ten_splits_partition_and_stratify_every_dataset() {
    for d in [Dataset::Texas, Dataset::Cora] {
        let g = generate_mini(d, 1);
        let splits = ten_splits(g.labels(), g.num_classes(), 99);
        assert_eq!(splits.len(), 10);
        let counts = class_counts(&g);
        for (si, s) in splits.iter().enumerate() {
            assert_eq!(s.len(), g.num_nodes(), "{} split {si} not a partition", d.name());
            // Stratification: train share per class within rounding of 60%.
            for (class, &count) in counts.iter().enumerate() {
                let train_c = s.train.iter().filter(|&&i| g.label(i) == class).count();
                let expect = count - 2 * (count / 5);
                assert_eq!(train_c, expect, "{} split {si} class {class}", d.name());
            }
        }
    }
}

#[test]
fn generators_are_seed_stable_across_calls() {
    for d in Dataset::ALL {
        let a = generate_mini(d, 5);
        let b = generate_mini(d, 5);
        assert_eq!(a.edge_vec(), b.edge_vec(), "{}", d.name());
        assert_eq!(a.labels(), b.labels(), "{}", d.name());
    }
}
