//! End-to-end profiling contract: a real Algorithm-1 run's JSONL
//! stream, fed through the `graphrare-trace` analysis pipeline, must
//! reconstruct a closed span forest whose folded flamegraph telescopes
//! to the `driver.run` span's wall time within 1%.

use std::path::PathBuf;

use graphrare::{run, GraphRareConfig};
use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};
use graphrare_gnn::Backbone;
use graphrare_telemetry as telemetry;
use graphrare_trace::{diff, folded_stacks, parse_spans_file, percentile_rows, root_totals};

#[test]
fn flame_root_total_matches_driver_run_within_one_percent() {
    let spec = DatasetSpec {
        name: "trace-profile-test",
        num_nodes: 50,
        num_edges: 120,
        feat_dim: 16,
        num_classes: 3,
        homophily: 0.2,
        degree_exponent: 0.4,
        feature_signal: 0.8,
        feature_density: 0.05,
    };
    let g = generate_spec(&spec, 9);
    let split = stratified_split(g.labels(), g.num_classes(), 0);
    let cfg = GraphRareConfig::fast().with_seed(17);

    let path: PathBuf = std::env::temp_dir().join("graphrare-trace-profile.jsonl");
    let _ = std::fs::remove_file(&path);
    telemetry::reset();
    telemetry::clear_sinks();
    telemetry::add_sink(Box::new(telemetry::JsonlSink::create(&path).unwrap()));
    telemetry::set_enabled(true);
    let _ = run(&g, &split, Backbone::Gcn, &cfg);
    telemetry::set_enabled(false);
    telemetry::clear_sinks();

    // The stream parses as a closed span forest (no orphaned parents).
    let spans = parse_spans_file(&path).expect("driver stream parses into a span forest");
    let run_span = spans.iter().find(|s| s.path == "driver.run").expect("driver.run span");

    // Self times telescope: the folded total under the driver.run root
    // reproduces the run span's wall time. Spans the registry dropped
    // to flat-only recording (none expected on this single-threaded
    // path) would show up here as a deficit.
    let folded = folded_stacks(&spans);
    let root = *root_totals(&folded).get("driver.run").expect("driver.run folded root");
    let tolerance = run_span.ns / 100;
    assert!(
        root.abs_diff(run_span.ns) <= tolerance,
        "folded root {root} vs driver.run {} exceeds 1%",
        run_span.ns
    );

    // The per-step percentile row covers every step, exactly.
    let rows = percentile_rows(&spans);
    let step = rows.iter().find(|r| r.path == "driver.run/driver.step").expect("step row");
    assert_eq!(step.count, cfg.steps as u64);
    assert!(step.p50_ns > 0 && step.p50_ns <= step.p99_ns);

    // A run diffed against itself passes the gate at a 0% threshold.
    assert!(diff(&spans, &spans, 0.0, 0).passed());

    let _ = std::fs::remove_file(&path);
}
