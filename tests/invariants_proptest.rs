//! Property-based tests of cross-crate invariants: random graphs, random
//! states, random action streams — the structural guarantees must hold
//! for all of them.

use proptest::prelude::*;

use graphrare::{EditMode, TopoState, TopologyOptimizer};
use graphrare_entropy::{
    EntropySequences, RelativeEntropyConfig, RelativeEntropyTable, SequenceConfig,
};
use graphrare_graph::{metrics, Graph};
use graphrare_tensor::Matrix;

/// Strategy: a random undirected graph with 4–20 nodes, random edges,
/// random binary features and 2–4 classes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..20, 2usize..5, any::<u64>()).prop_flat_map(|(n, classes, seed)| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..max_edges.min(40)).prop_map(move |pairs| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let features = Matrix::from_fn(n, 6, |_, _| if rng.gen_bool(0.3) { 1.0 } else { 0.0 });
            let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
            Graph::from_edges(n, &pairs, features, labels, classes)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn homophily_is_always_a_ratio(g in arb_graph()) {
        let h = metrics::homophily_ratio(&g);
        prop_assert!((0.0..=1.0).contains(&h));
        let nh = metrics::node_homophily(&g);
        prop_assert!((0.0..=1.0).contains(&nh));
    }

    #[test]
    fn relative_entropy_is_symmetric_and_finite(g in arb_graph()) {
        let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let n = g.num_nodes();
        for v in 0..n {
            for u in 0..n {
                let h = table.entropy(v, u);
                prop_assert!(h.is_finite(), "H({v},{u}) = {h}");
                prop_assert!((h - table.entropy(u, v)).abs() < 1e-9);
                let hs = table.structural_entropy(v, u);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&hs));
                let hf = table.feature_entropy(v, u);
                prop_assert!((0.0..=1.0).contains(&hf));
            }
        }
    }

    #[test]
    fn sequences_never_point_at_self_or_neighbors(g in arb_graph()) {
        let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let seqs = EntropySequences::build(&g, &table, &SequenceConfig::default());
        for v in 0..g.num_nodes() {
            for &(u, _) in seqs.additions(v) {
                prop_assert_ne!(u as usize, v);
                prop_assert!(!g.has_edge(v, u as usize));
            }
            prop_assert_eq!(seqs.deletions(v).len(), g.degree(v));
        }
    }

    #[test]
    fn materialize_respects_bounds_for_any_action_stream(
        g in arb_graph(),
        actions in proptest::collection::vec(0u8..3, 0..200),
    ) {
        let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let seqs = EntropySequences::build(&g, &table, &SequenceConfig::default());
        let topo = TopologyOptimizer::new(g.clone(), seqs, EditMode::Both);
        let mut state = TopoState::new(topo.k_bounds(6), topo.d_bounds(6));
        let n = g.num_nodes();
        for chunk in actions.chunks(2 * n) {
            if chunk.len() == 2 * n {
                state.apply(chunk);
            }
        }
        let rewired = topo.materialize(&state);
        // Node count invariant and degree lower bound: deletions keep at
        // least one original neighbour per node.
        prop_assert_eq!(rewired.num_nodes(), n);
        for v in 0..n {
            if g.degree(v) > 0 {
                prop_assert!(rewired.degree(v) >= 1, "node {v} isolated by deletions");
            }
            prop_assert!(state.k(v) <= state.k_max(v));
            prop_assert!(state.d(v) <= state.d_max(v));
        }
        // Zero state must reproduce the base graph exactly.
        state.reset();
        prop_assert_eq!(topo.materialize(&state).edge_vec(), g.edge_vec());
    }

    #[test]
    fn state_features_stay_in_unit_box(
        bounds in proptest::collection::vec(0u16..8, 1..16),
        actions in proptest::collection::vec(0u8..3, 0..120),
    ) {
        let n = bounds.len();
        let mut state = TopoState::new(bounds.clone(), bounds);
        for chunk in actions.chunks(2 * n) {
            if chunk.len() == 2 * n {
                state.apply(chunk);
            }
        }
        for f in state.features() {
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn add_then_remove_edge_is_identity(g in arb_graph(), u in 0usize..20, v in 0usize..20) {
        let mut g2 = g.clone();
        let n = g2.num_nodes();
        let (u, v) = (u % n, v % n);
        if u != v && !g2.has_edge(u, v) {
            prop_assert!(g2.add_edge(u, v));
            prop_assert!(g2.remove_edge(u, v));
            prop_assert_eq!(g2.edge_vec(), g.edge_vec());
            prop_assert_eq!(g2.num_edges(), g.num_edges());
        }
    }
}
