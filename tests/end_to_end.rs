//! End-to-end integration tests: the full GraphRARE pipeline spanning all
//! workspace crates (datasets → entropy → GNN → RL → driver).

use graphrare::{run, EditMode, GraphRareConfig, SequenceMode};
use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};
use graphrare_gnn::{build_model, fit, Backbone, GraphTensors, ModelConfig, TrainConfig};
use graphrare_graph::Graph;

/// A strongly heterophilic graph with clean features: the setting where
/// the paper's claims are sharpest.
fn heterophilic_graph(seed: u64) -> Graph {
    let spec = DatasetSpec {
        name: "e2e",
        num_nodes: 80,
        num_edges: 200,
        feat_dim: 24,
        num_classes: 4,
        homophily: 0.10,
        degree_exponent: 0.3,
        feature_signal: 0.9,
        feature_density: 0.05,
    };
    generate_spec(&spec, seed)
}

fn quick_cfg(seed: u64) -> GraphRareConfig {
    let mut cfg = GraphRareConfig::default().with_seed(seed);
    cfg.steps = 24;
    cfg.update_every = 6;
    cfg.warmup_epochs = 25;
    cfg.train.epochs = 60;
    cfg
}

#[test]
fn graphrare_beats_plain_gcn_on_heterophilic_graph() {
    // Averaged over three splits to keep the comparison robust.
    let g = heterophilic_graph(1);
    let mut plain_total = 0.0;
    let mut rare_total = 0.0;
    for s in 0..3u64 {
        let split = stratified_split(g.labels(), g.num_classes(), s);
        let model_cfg = ModelConfig { seed: s, ..Default::default() };
        let model = build_model(Backbone::Gcn, g.feat_dim(), g.num_classes(), &model_cfg);
        let labels = g.labels().to_vec();
        let train = TrainConfig { epochs: 60, seed: s, ..Default::default() };
        plain_total +=
            fit(model.as_ref(), &GraphTensors::new(&g), &labels, &split, &train).test_acc;
        rare_total += run(&g, &split, Backbone::Gcn, &quick_cfg(s)).test_acc;
    }
    assert!(
        rare_total > plain_total,
        "GCN-RARE ({:.3}) did not beat GCN ({:.3}) on a strongly heterophilic graph",
        rare_total / 3.0,
        plain_total / 3.0
    );
}

#[test]
fn full_pipeline_is_reproducible() {
    let g = heterophilic_graph(2);
    let split = stratified_split(g.labels(), g.num_classes(), 0);
    let cfg = quick_cfg(9);
    let a = run(&g, &split, Backbone::Gcn, &cfg);
    let b = run(&g, &split, Backbone::Gcn, &cfg);
    assert_eq!(a.test_acc, b.test_acc);
    assert_eq!(a.best_val_acc, b.best_val_acc);
    assert_eq!(a.optimized_graph.edge_vec(), b.optimized_graph.edge_vec());
    assert_eq!(a.traces.episode_rewards, b.traces.episode_rewards);
}

#[test]
fn every_backbone_survives_the_full_loop() {
    let g = heterophilic_graph(3);
    let split = stratified_split(g.labels(), g.num_classes(), 1);
    for backbone in [Backbone::Gcn, Backbone::Sage, Backbone::Gat, Backbone::H2gcn] {
        let mut cfg = quick_cfg(4);
        cfg.steps = 8;
        cfg.update_every = 4;
        let report = run(&g, &split, backbone, &cfg);
        assert!(
            (0.0..=1.0).contains(&report.test_acc),
            "{}: invalid accuracy {}",
            backbone.name(),
            report.test_acc
        );
        assert!(report.optimized_graph.num_nodes() == g.num_nodes());
        assert!(report.traces.homophily.iter().all(|h| (0.0..=1.0).contains(h)));
    }
}

#[test]
fn ablation_modes_respect_edit_constraints() {
    let g = heterophilic_graph(4);
    let split = stratified_split(g.labels(), g.num_classes(), 2);
    let mut cfg = quick_cfg(5);
    cfg.steps = 12;

    cfg.edit_mode = EditMode::AddOnly;
    let add_only = run(&g, &split, Backbone::Gcn, &cfg);
    for (u, v) in g.edge_vec() {
        assert!(add_only.optimized_graph.has_edge(u, v), "AddOnly removed edge ({u},{v})");
    }

    cfg.edit_mode = EditMode::RemoveOnly;
    let remove_only = run(&g, &split, Backbone::Gcn, &cfg);
    for (u, v) in remove_only.optimized_graph.edge_vec() {
        assert!(g.has_edge(u, v), "RemoveOnly added edge ({u},{v})");
    }
}

#[test]
fn shuffled_sequences_change_the_outcome() {
    let g = heterophilic_graph(5);
    let split = stratified_split(g.labels(), g.num_classes(), 3);
    let cfg = quick_cfg(6);
    let entropy_run = run(&g, &split, Backbone::Gcn, &cfg);
    let mut shuffled_cfg = cfg;
    shuffled_cfg.sequence_mode = SequenceMode::Shuffled { seed: 123 };
    let shuffled_run = run(&g, &split, Backbone::Gcn, &shuffled_cfg);
    // The runs must differ somewhere (same seeds otherwise).
    assert!(
        entropy_run.optimized_graph.edge_vec() != shuffled_run.optimized_graph.edge_vec()
            || entropy_run.test_acc != shuffled_run.test_acc,
        "shuffling the rankings had no observable effect"
    );
}

#[test]
fn traces_are_internally_consistent() {
    let g = heterophilic_graph(6);
    let split = stratified_split(g.labels(), g.num_classes(), 4);
    let cfg = quick_cfg(7);
    let report = run(&g, &split, Backbone::Gcn, &cfg);
    assert_eq!(report.traces.train_acc.len(), cfg.steps);
    assert_eq!(report.traces.val_acc.len(), cfg.steps);
    assert_eq!(report.traces.homophily.len(), cfg.steps);
    assert_eq!(report.traces.episode_rewards.len(), cfg.steps / cfg.update_every);
    assert_eq!(report.traces.ppo_stats.len(), cfg.steps / cfg.update_every);
    // Best validation accuracy must be at least the max of the val trace.
    let max_traced = report.traces.val_acc.iter().copied().fold(0.0f64, f64::max);
    assert!(report.best_val_acc >= max_traced - 1e-12);
}
