//! Integration test sweeping every method of Table III once on a small
//! fixture: backbones, baselines and RARE variants must all train, stay
//! deterministic and produce sane accuracies.

use graphrare_baselines::{run_baseline, BaselineConfig, BaselineKind};
use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec, Split};
use graphrare_gnn::{build_model, fit, Backbone, GraphTensors, ModelConfig, TrainConfig};
use graphrare_graph::Graph;

fn fixture(homophily: f64, seed: u64) -> (Graph, Split) {
    let spec = DatasetSpec {
        name: "suite",
        num_nodes: 60,
        num_edges: 140,
        feat_dim: 20,
        num_classes: 3,
        homophily,
        degree_exponent: 0.3,
        feature_signal: 0.85,
        feature_density: 0.05,
    };
    let g = generate_spec(&spec, seed);
    let split = stratified_split(g.labels(), g.num_classes(), seed);
    (g, split)
}

#[test]
fn all_backbones_learn_a_homophilic_graph() {
    let (g, split) = fixture(0.85, 1);
    let labels = g.labels().to_vec();
    let gt = GraphTensors::new(&g);
    for backbone in Backbone::ALL {
        let model_cfg = ModelConfig { seed: 3, ..Default::default() };
        let model = build_model(backbone, g.feat_dim(), g.num_classes(), &model_cfg);
        let train = TrainConfig { epochs: 80, ..Default::default() };
        let report = fit(model.as_ref(), &gt, &labels, &split, &train);
        assert!(
            report.test_acc > 0.45,
            "{} reached only {:.3} on an easy homophilic graph",
            backbone.name(),
            report.test_acc
        );
    }
}

#[test]
fn mlp_is_topology_invariant_but_gcn_is_not() {
    let (g, split) = fixture(0.2, 2);
    let labels = g.labels().to_vec();
    let mut rewired = g.clone();
    // Perturb the topology.
    let edges = g.edge_vec();
    for &(u, v) in edges.iter().take(10) {
        rewired.remove_edge(u, v);
    }
    for kind in [Backbone::Mlp, Backbone::Gcn] {
        let model_cfg = ModelConfig { seed: 5, ..Default::default() };
        let train = TrainConfig { epochs: 30, ..Default::default() };
        let m1 = build_model(kind, g.feat_dim(), g.num_classes(), &model_cfg);
        let a = fit(m1.as_ref(), &GraphTensors::new(&g), &labels, &split, &train);
        let m2 = build_model(kind, g.feat_dim(), g.num_classes(), &model_cfg);
        let b = fit(m2.as_ref(), &GraphTensors::new(&rewired), &labels, &split, &train);
        match kind {
            Backbone::Mlp => {
                assert_eq!(a.test_acc, b.test_acc, "MLP accuracy changed with topology")
            }
            _ => assert_ne!(
                (a.test_acc, a.best_val_acc),
                (b.test_acc, b.best_val_acc),
                "GCN accuracy identical despite topology change"
            ),
        }
    }
}

#[test]
fn all_nine_baselines_run_on_a_heterophilic_fixture() {
    let (g, split) = fixture(0.15, 3);
    let cfg = BaselineConfig {
        train: TrainConfig { epochs: 25, ..Default::default() },
        ..Default::default()
    };
    for kind in BaselineKind::ALL {
        let report = run_baseline(kind, &g, &split, &cfg);
        assert!((0.0..=1.0).contains(&report.test_acc), "{}: invalid accuracy", kind.name());
        assert!(report.epochs_run > 0, "{}: no epochs", kind.name());
    }
}

#[test]
fn rewiring_baselines_beat_plain_gcn_on_strong_heterophily() {
    // UGCN and MI-GCN rewire by feature similarity: with informative
    // features and H = 0.1 they should beat the plain backbone on average.
    let mut ugcn_total = 0.0;
    let mut gcn_total = 0.0;
    for seed in 0..3u64 {
        let (g, split) = fixture(0.1, 10 + seed);
        let labels = g.labels().to_vec();
        let cfg = BaselineConfig {
            train: TrainConfig { epochs: 60, ..Default::default() },
            seed,
            ..Default::default()
        };
        ugcn_total += run_baseline(BaselineKind::Ugcn, &g, &split, &cfg).test_acc;
        let model_cfg = ModelConfig { seed, ..Default::default() };
        let model = build_model(Backbone::Gcn, g.feat_dim(), g.num_classes(), &model_cfg);
        gcn_total +=
            fit(model.as_ref(), &GraphTensors::new(&g), &labels, &split, &cfg.train).test_acc;
    }
    assert!(
        ugcn_total > gcn_total,
        "UGCN ({:.3}) did not beat GCN ({:.3}) under strong heterophily",
        ugcn_total / 3.0,
        gcn_total / 3.0
    );
}
